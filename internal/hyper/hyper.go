// Package hyper is Cascade's hypervisor: one shared FPGA and one shared
// vendor-toolchain job service, virtualized across N tenant sessions.
// The paper's runtime assumes one developer per device; hyper is the
// "millions of users" direction (SYNERGY) — the fabric is spatially
// partitioned into per-tenant regions, tenants whose regions do not all
// fit at once are time-multiplexed through a FIFO residency queue, and
// the compile pool is split by per-tenant fair-share quotas.
//
// The load-bearing invariant is *virtual-time isolation*: scheduling —
// which tenant is resident, who waits for a compile worker — only ever
// costs wall-clock time. Every tenant's virtual clock, observable
// output stream, and JIT phase trajectory is byte-identical to the same
// program run alone in a single-tenant runtime (the property test in
// isolation_test.go proves this against solo baselines, faults
// included). The pieces that make it true:
//
//   - each session's Runtime owns a *private* device sized to its
//     region quota, so placement, fit, and timing decisions never see
//     another tenant;
//   - the shared Toolchain scopes faults, observers, stats, and cache
//     keys per tenant (toolchain.SubmitTenant) — a neighbour's warmed
//     cache or seeded fault schedule cannot alter a tenant's compile
//     timeline;
//   - job readiness is purely virtual (readyAt = submit + duration), so
//     fair-share queueing delays only wall time;
//   - losing residency parks the session between quanta without
//     touching its runtime — no state moves, no virtual time passes.
package hyper

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
)

// ErrClosed is returned by operations on a closed hypervisor or session.
var ErrClosed = errors.New("hyper: closed")

// Options configures a hypervisor. The zero value serves a fresh
// Cyclone V with a default toolchain, 64-tick scheduling quanta, and
// quarter-fabric default session quotas.
type Options struct {
	// Device is the shared fabric all tenant regions are carved from
	// (default: a fresh Cyclone V).
	Device *fpga.Device
	// Toolchain is the shared compile service (default: a standard
	// model over Device). Tenants are registered on it with their
	// fair-share quotas; the bitstream cache is shared storage but
	// namespaced per tenant.
	Toolchain *toolchain.Toolchain
	// ToolchainOptions tunes the default toolchain when Toolchain is
	// nil (ignored otherwise).
	ToolchainOptions *toolchain.Options
	// QuantumTicks is the time-multiplexing quantum: a session holds
	// fabric residency for at most this many virtual clock ticks before
	// yielding to waiting tenants. Default 64.
	QuantumTicks uint64
	// DefaultQuotaLEs is the region size sessions get when they do not
	// ask for one. Default: a quarter of the shared fabric.
	DefaultQuotaLEs int
	// DefaultCompileShare bounds each session's concurrent compile
	// workers when the session does not ask; 0 leaves sessions bounded
	// only by the global pool.
	DefaultCompileShare int
	// Observer receives hypervisor-level metrics: active-session count,
	// per-tenant residency gauges, and per-tenant quantum counters
	// (labeled series). Sessions carry their own observers for their
	// own pipelines; nil disables hypervisor metrics.
	Observer *obsv.Observer
}

// Option configures a hypervisor (hyper.New / cascade.Serve).
type Option func(*Options)

// WithDevice serves the given shared fabric instead of a fresh
// Cyclone V.
func WithDevice(d *fpga.Device) Option {
	return func(o *Options) { o.Device = d }
}

// WithToolchain shares an existing compile service instead of building
// one over the device.
func WithToolchain(tc *toolchain.Toolchain) Option {
	return func(o *Options) { o.Toolchain = tc }
}

// WithToolchainOptions tunes the toolchain the hypervisor builds when
// none is supplied.
func WithToolchainOptions(to toolchain.Options) Option {
	return func(o *Options) { o.ToolchainOptions = &to }
}

// WithQuantum sets the time-multiplexing quantum in virtual clock ticks
// (default 64).
func WithQuantum(ticks uint64) Option {
	return func(o *Options) { o.QuantumTicks = ticks }
}

// WithDefaultQuota sets the region size sessions get when they do not
// specify one (default: a quarter of the fabric).
func WithDefaultQuota(les int) Option {
	return func(o *Options) { o.DefaultQuotaLEs = les }
}

// WithDefaultCompileShare sets the default per-session bound on
// concurrent compile workers (default 0: global pool only).
func WithDefaultCompileShare(n int) Option {
	return func(o *Options) { o.DefaultCompileShare = n }
}

// WithObserver wires hypervisor-level metrics into an observability hub.
func WithObserver(ob *obsv.Observer) Option {
	return func(o *Options) { o.Observer = ob }
}

// Hypervisor owns one shared device and toolchain and hosts N tenant
// sessions over them.
type Hypervisor struct {
	opts Options
	dev  *fpga.Device
	tc   *toolchain.Toolchain

	mu       sync.Mutex
	cond     *sync.Cond
	nextID   int
	sessions map[string]*Session
	queue    []*Session // residency waiters, FIFO
	closed   bool

	obs       *obsv.Observer
	active    *obsv.Gauge
	residentG map[string]*obsv.Gauge   // per-tenant residency, cached across id reuse
	quantaC   map[string]*obsv.Counter // per-tenant quanta, cached across id reuse
}

// New builds a hypervisor.
func New(opts ...Option) (*Hypervisor, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	if o.Device == nil {
		o.Device = fpga.NewCycloneV()
	}
	if o.Toolchain == nil {
		to := toolchain.DefaultOptions()
		if o.ToolchainOptions != nil {
			to = *o.ToolchainOptions
		}
		o.Toolchain = toolchain.New(o.Device, to)
	}
	if o.QuantumTicks == 0 {
		o.QuantumTicks = 64
	}
	if o.DefaultQuotaLEs <= 0 {
		o.DefaultQuotaLEs = o.Device.Capacity() / 4
	}
	if o.DefaultQuotaLEs <= 0 || o.DefaultQuotaLEs > o.Device.Capacity() {
		return nil, fmt.Errorf("hyper: default quota %d LEs outside device capacity %d",
			o.DefaultQuotaLEs, o.Device.Capacity())
	}
	hv := &Hypervisor{
		opts:      o,
		dev:       o.Device,
		tc:        o.Toolchain,
		sessions:  map[string]*Session{},
		obs:       o.Observer,
		residentG: map[string]*obsv.Gauge{},
		quantaC:   map[string]*obsv.Counter{},
	}
	hv.cond = sync.NewCond(&hv.mu)
	hv.active = o.Observer.NewGauge("cascade_sessions_active", "live hypervisor sessions")
	return hv, nil
}

// Device returns the shared fabric.
func (hv *Hypervisor) Device() *fpga.Device { return hv.dev }

// Toolchain returns the shared compile service.
func (hv *Hypervisor) Toolchain() *toolchain.Toolchain { return hv.tc }

// QuantumTicks returns the time-multiplexing quantum.
func (hv *Hypervisor) QuantumTicks() uint64 { return hv.opts.QuantumTicks }

// SessionCount returns the number of live sessions.
func (hv *Hypervisor) SessionCount() int {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	return len(hv.sessions)
}

// SessionInfo is one live session's scheduling view, for tooling (the
// REPL's :sessions).
type SessionInfo struct {
	ID           string
	Phase        runtime.Phase
	QuotaLEs     int // region size on the shared fabric
	Resident     bool
	CompileShare int    // fair-share compile-worker bound (0: global pool)
	Quanta       uint64 // residency quanta consumed so far
	Ticks        uint64
}

// SessionInfos snapshots every live session, sorted by ID.
func (hv *Hypervisor) SessionInfos() []SessionInfo {
	hv.mu.Lock()
	ss := make([]*Session, 0, len(hv.sessions))
	for _, s := range hv.sessions {
		ss = append(ss, s)
	}
	hv.mu.Unlock()
	sort.Slice(ss, func(i, j int) bool { return ss[i].id < ss[j].id })
	infos := make([]SessionInfo, 0, len(ss))
	for _, s := range ss {
		infos = append(infos, s.Info())
	}
	return infos
}

// Session looks up a live session by ID (nil when absent).
func (hv *Hypervisor) Session(id string) *Session {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	return hv.sessions[id]
}

// Close shuts every session down and closes the hypervisor. New
// sessions are refused afterwards.
func (hv *Hypervisor) Close() error {
	hv.mu.Lock()
	hv.closed = true
	ss := make([]*Session, 0, len(hv.sessions))
	for _, s := range hv.sessions {
		ss = append(ss, s)
	}
	hv.mu.Unlock()
	var err error
	for _, s := range ss {
		if cerr := s.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// metricsFor returns (creating and caching on first use) the per-tenant
// labeled series for id. The cache survives session close so a reused
// ID does not re-register a duplicate series. Callers hold hv.mu.
func (hv *Hypervisor) metricsFor(id string) (*obsv.Gauge, *obsv.Counter) {
	if hv.obs == nil {
		return nil, nil
	}
	g, ok := hv.residentG[id]
	if !ok {
		g = hv.obs.NewLabeledGauge("cascade_tenant_resident",
			"1 while the tenant's region is placed on the shared fabric",
			map[string]string{"tenant": id})
		hv.residentG[id] = g
	}
	c, ok := hv.quantaC[id]
	if !ok {
		c = hv.obs.NewLabeledCounter("cascade_tenant_quanta_total",
			"fabric residency quanta granted to the tenant",
			map[string]string{"tenant": id})
		hv.quantaC[id] = c
	}
	return g, c
}

// reapIdleLocked releases the shared-fabric regions of sessions that
// are resident but not currently inside a quantum, making room for the
// queue head. Only shared-device bookkeeping moves: the reaped
// session's runtime, private device, and virtual clock are untouched,
// and it re-queues for residency on its next quantum. Callers hold
// hv.mu.
func (hv *Hypervisor) reapIdleLocked() {
	for _, s := range hv.sessions {
		if s.resident && !s.stepping {
			hv.dev.Release(s.region())
			s.resident = false
			s.residentG.Set(0)
		}
	}
}

// removeWaiterLocked drops s from the residency queue. Callers hold
// hv.mu.
func (hv *Hypervisor) removeWaiterLocked(s *Session) {
	for i, w := range hv.queue {
		if w == s {
			hv.queue = append(hv.queue[:i], hv.queue[i+1:]...)
			return
		}
	}
}
