package hyper

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
)

// The isolation property: every session hosted by a hypervisor —
// sharing its fabric, its compile pool, and its bitstream-cache storage
// with N-1 neighbours, one of them fault-injected — produces an
// observable output stream, virtual clock, phase, and compile history
// byte-identical to the same program driven through the same chunk
// sequence in a solo single-tenant runtime. Multi-tenancy is allowed to
// cost wall time; it is never allowed to cost virtual time.

const (
	isoTicks    = 1500
	isoQuantum  = 50
	isoQuota    = 8_000
	isoClockHz  = 50_000_000
	isoOLTarget = 10 * vclock.Us
)

// isoFaults is the seeded schedule tenant 0 runs under: every compile
// attempt faults transiently until the budget is spent, exercising the
// retry/backoff path.
var isoFaults = fault.Config{Seed: 7, CompileTransient: 1, MaxCompileFaults: 2}

func isoProgram(i int) string {
	return fmt.Sprintf(`
        reg [7:0] cnt = 0;
        always @(posedge clk.val) begin
            cnt <= cnt + 1;
            if (cnt == 8'd%d) $display("t%d at %%d", cnt);
        end
        assign led.val = cnt;
    `, 37+13*i, i)
}

func isoToolchainOptions() toolchain.Options {
	tco := toolchain.DefaultOptions()
	tco.Scale = 1e9
	tco.BasePs = 1
	return tco
}

// pinnedObserver returns an observer with a frozen wall clock, so the
// wall-adaptive paths (open-loop burst sizing) are deterministic and
// identical between a contended session and an uncontended baseline.
func pinnedObserver() *obsv.Observer {
	wall := time.Unix(1_000_000, 0)
	return obsv.New(obsv.Options{WallClock: func() time.Time { return wall }})
}

// isoResult is everything a tenant can observe about its own execution.
type isoResult struct {
	Output  string
	Infos   []string
	VNow    uint64
	Steps   uint64
	Ticks   uint64
	Phase   runtime.Phase
	Time    vclock.Breakdown
	Compile toolchain.Stats
	AreaLEs int
}

func capture(view *runtime.BufView, st runtime.Stats) isoResult {
	return isoResult{
		Output:  view.Output(),
		Infos:   view.Infos(),
		VNow:    st.Time.NowPs,
		Steps:   st.Steps,
		Ticks:   st.Ticks,
		Phase:   st.Phase,
		Time:    st.Time,
		Compile: st.Compile,
		AreaLEs: st.AreaLEs,
	}
}

func sameResult(t *testing.T, label string, got, want isoResult) {
	t.Helper()
	if got.Output != want.Output {
		t.Errorf("%s: output diverged:\nsession:\n%s\nsolo:\n%s", label, got.Output, want.Output)
	}
	if len(got.Infos) != len(want.Infos) {
		t.Errorf("%s: info stream diverged: %d vs %d lines\nsession: %q\nsolo: %q",
			label, len(got.Infos), len(want.Infos), got.Infos, want.Infos)
	} else {
		for i := range got.Infos {
			if got.Infos[i] != want.Infos[i] {
				t.Errorf("%s: info[%d] diverged: %q vs %q", label, i, got.Infos[i], want.Infos[i])
			}
		}
	}
	if got.VNow != want.VNow {
		t.Errorf("%s: virtual clock diverged: %d vs %d ps", label, got.VNow, want.VNow)
	}
	if got.Time != want.Time {
		t.Errorf("%s: virtual-time breakdown diverged:\nsession: %+v\nsolo: %+v", label, got.Time, want.Time)
	}
	if got.Steps != want.Steps || got.Ticks != want.Ticks {
		t.Errorf("%s: steps/ticks diverged: %d/%d vs %d/%d", label, got.Steps, got.Ticks, want.Steps, want.Ticks)
	}
	if got.Phase != want.Phase {
		t.Errorf("%s: phase diverged: %v vs %v", label, got.Phase, want.Phase)
	}
	if got.Compile != want.Compile {
		t.Errorf("%s: compile stats diverged:\nsession: %+v\nsolo: %+v", label, got.Compile, want.Compile)
	}
	if got.AreaLEs != want.AreaLEs {
		t.Errorf("%s: area diverged: %d vs %d LEs", label, got.AreaLEs, want.AreaLEs)
	}
}

// injectorFor builds tenant i's injector (tenant 0 is the faulty one).
func injectorFor(i int) *fault.Injector {
	if i == 0 {
		return fault.New(isoFaults)
	}
	return nil
}

// runSolo executes tenant i's program in a private single-tenant
// runtime — its own device of exactly the session quota, its own
// toolchain — driven through the identical quantum chunking the
// hypervisor uses (burst partitioning follows chunk boundaries, so the
// baseline must see the same chunks to bill the same virtual time).
func runSolo(i int) isoResult {
	dev := fpga.NewDevice(isoQuota, isoClockHz)
	tc := toolchain.New(dev, isoToolchainOptions())
	view := &runtime.BufView{Quiet: true}
	rt := runtime.New(runtime.Options{
		Device:           dev,
		Toolchain:        tc,
		View:             view,
		Observer:         pinnedObserver(),
		Injector:         injectorFor(i),
		Parallelism:      2,
		OpenLoopTargetPs: isoOLTarget,
	})
	rt.MustEval(runtime.DefaultPrelude)
	rt.MustEval(isoProgram(i))
	for rem := uint64(isoTicks); rem > 0 && !rt.Finished(); {
		chunk := uint64(isoQuantum)
		if chunk > rem {
			chunk = rem
		}
		rt.RunTicks(chunk)
		rem -= chunk
	}
	return capture(view, rt.Stats())
}

// runSessions executes all N tenants concurrently on one hypervisor and
// returns each tenant's observations. A non-nil farm installs a compile
// farm on the shared toolchain through the first tenant's runtime
// options (installation is idempotent; later tenants find it in place).
func runSessions(t *testing.T, n, capacityLEs int, farm *toolchain.FarmOptions) []isoResult {
	t.Helper()
	shared := fpga.NewDevice(capacityLEs, isoClockHz)
	hv, err := New(
		WithDevice(shared),
		WithToolchainOptions(isoToolchainOptions()),
		WithQuantum(isoQuantum),
		WithDefaultQuota(isoQuota),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Close()

	views := make([]*runtime.BufView, n)
	sessions := make([]*Session, n)
	for i := 0; i < n; i++ {
		views[i] = &runtime.BufView{Quiet: true}
		sessions[i], err = hv.NewSession(
			WithID(fmt.Sprintf("t%d", i)),
			WithQuota(isoQuota),
			WithCompileShare(1),
			WithRuntime(runtime.Options{
				View:             views[i],
				Observer:         pinnedObserver(),
				Injector:         injectorFor(i),
				Parallelism:      2,
				OpenLoopTargetPs: isoOLTarget,
				Farm:             farm,
			}),
		)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			s.MustEval(runtime.DefaultPrelude)
			s.MustEval(isoProgram(i))
			s.RunTicks(isoTicks)
		}(i, s)
	}
	wg.Wait()

	out := make([]isoResult, n)
	for i, s := range sessions {
		out[i] = capture(views[i], s.Stats())
	}
	return out
}

// TestIsolationSpatial: two tenants whose regions fit on the shared
// fabric simultaneously (2x8k on 20k LEs) run concurrently; each must
// match its solo baseline byte for byte. Tenant 0 runs under a seeded
// fault schedule — its retries must not leak into tenant 1 either.
func TestIsolationSpatial(t *testing.T) {
	got := runSessions(t, 2, 20_000, nil)
	for i, g := range got {
		sameResult(t, fmt.Sprintf("tenant %d (N=2 spatial)", i), g, runSolo(i))
	}
}

// TestIsolationTimeMultiplexed: four tenants over a fabric that holds
// only two regions at a time (4x8k on 20k LEs), forcing residency
// eviction and re-admission between quanta. Time-multiplexing must cost
// wall time only: every tenant still matches its solo baseline exactly.
func TestIsolationTimeMultiplexed(t *testing.T) {
	got := runSessions(t, 4, 20_000, nil)
	for i, g := range got {
		sameResult(t, fmt.Sprintf("tenant %d (N=4 time-mux)", i), g, runSolo(i))
	}
}

// TestIsolationAcrossClose: a neighbour crashing out mid-run (Close
// between quanta) must be invisible to the survivor.
func TestIsolationAcrossClose(t *testing.T) {
	shared := fpga.NewDevice(20_000, isoClockHz)
	hv, err := New(
		WithDevice(shared),
		WithToolchainOptions(isoToolchainOptions()),
		WithQuantum(isoQuantum),
		WithDefaultQuota(isoQuota),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Close()

	view := &runtime.BufView{Quiet: true}
	survivor, err := hv.NewSession(WithID("t1"), WithRuntime(runtime.Options{
		View:             view,
		Observer:         pinnedObserver(),
		Parallelism:      2,
		OpenLoopTargetPs: isoOLTarget,
	}))
	if err != nil {
		t.Fatal(err)
	}
	crasher, err := hv.NewSession(WithID("t0"), WithRuntime(runtime.Options{
		View:             &runtime.BufView{Quiet: true},
		Observer:         pinnedObserver(),
		Injector:         fault.New(isoFaults),
		Parallelism:      2,
		OpenLoopTargetPs: isoOLTarget,
	}))
	if err != nil {
		t.Fatal(err)
	}

	crasher.MustEval(runtime.DefaultPrelude)
	crasher.MustEval(isoProgram(0))
	crasher.RunTicks(3 * isoQuantum)

	survivor.MustEval(runtime.DefaultPrelude)
	survivor.MustEval(isoProgram(1))
	for rem := uint64(isoTicks); rem > 0; {
		chunk := uint64(isoQuantum)
		if chunk > rem {
			chunk = rem
		}
		survivor.RunTicks(chunk)
		rem -= chunk
		if rem == isoTicks/2/isoQuantum*isoQuantum {
			// Mid-run, the neighbour dies.
			if err := crasher.Close(); err != nil {
				t.Fatalf("crasher close: %v", err)
			}
		}
	}
	sameResult(t, "survivor (neighbour crashed mid-run)", capture(view, survivor.Stats()), runSolo(1))
}

// TestIsolationWithCompileFarm composes invariant 15 with the isolation
// property: tenants of a hypervisor whose shared toolchain shards every
// fabric compile across an in-process farm must still match their solo
// local-backend baselines byte for byte — fair-share admission survives
// the backend swap, and the farm changes where flows run, never what a
// tenant observes. Four tenants over a two-region fabric keep the
// time-multiplexing pressure on while the farm routes.
func TestIsolationWithCompileFarm(t *testing.T) {
	got := runSessions(t, 4, 20_000, &toolchain.FarmOptions{Workers: 3})
	for i, g := range got {
		sameResult(t, fmt.Sprintf("tenant %d (N=4 farm)", i), g, runSolo(i))
	}
}
