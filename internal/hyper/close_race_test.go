package hyper

import (
	"context"
	"testing"
	"time"

	"cascade/internal/runtime"
)

// watchdog converts a leaked-slot hang into a diagnosable failure
// instead of a test-binary timeout. Healthy runs finish in milliseconds;
// the margin only needs to beat race-detector slowdown.
func watchdog(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(60 * time.Second)
}

// TestCloseRacesPendingCompile pins the teardown contract for the shared
// compile pool: a session closed while its tenant compile jobs are still
// in flight — mid-quantum, mid-submission, mid-worker — must not leak a
// fair-share slot or a global worker slot. The toolchain runs with a
// single global worker, so any leaked slot turns the follow-up probe
// compile into a permanent hang instead of a subtle slowdown; the rounds
// also reuse one tenant ID so a stale registration or semaphore carried
// across Close/NewSession would surface immediately.
func TestCloseRacesPendingCompile(t *testing.T) {
	to := isoToolchainOptions()
	to.Workers = 1
	hv := testHV(t, 20_000, 4_000, WithToolchainOptions(to))

	const rounds = 6
	for i := 0; i < rounds; i++ {
		s := testSession(t, hv, WithID("racer"), WithCompileShare(1))
		s.MustEval(runtime.DefaultPrelude)
		// A fresh program each round: tenant-namespaced cache keys mean
		// every round's JIT submission is a real compile occupying the
		// lone worker, not a cache hit that never touches a slot.
		s.MustEval(isoProgram(i))
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Drive quanta until Close wins the race: acquire observes
			// the closed flag between quanta and returns ErrClosed.
			for s.RunTicksCtx(context.Background(), isoQuantum) == nil {
			}
		}()
		// Close serializes on opMu against the driver, landing between
		// quanta while this round's compile jobs are still pending on the
		// worker pool.
		if err := s.Close(); err != nil {
			t.Fatalf("round %d: close: %v", i, err)
		}
		<-done
	}
	if n := hv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived their Close", n)
	}

	// The probe reuses the raced tenant ID with a fair share of 1: its
	// compile must acquire both the tenant slot and the single global
	// worker. Synthesis only runs after both slots are held, so a
	// synthesized flow in the probe's tenant stats proves nothing leaked.
	probe := testSession(t, hv, WithID("racer"), WithCompileShare(1))
	defer probe.Close()
	if got := hv.Toolchain().TenantShare("racer"); got != 1 {
		t.Fatalf("probe fair share = %d, want 1 (stale registration?)", got)
	}
	probe.MustEval(runtime.DefaultPrelude)
	probe.MustEval(isoProgram(rounds))

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		probe.RunTicks(10 * isoQuantum)
	}()
	select {
	case <-finished:
	case <-watchdog(t):
		t.Fatal("probe compile hung: a raced Close leaked a worker or fair-share slot")
	}
	if st := probe.Stats(); st.Compile.Synthesized == 0 {
		t.Fatalf("probe never reached a worker: %+v", st.Compile)
	}
}
