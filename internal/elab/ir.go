// Package elab elaborates a single flat Verilog module (no instances —
// Cascade's IR pass has already split the hierarchy into peer subprograms)
// into a resolved intermediate representation: parameters are bound,
// widths are computed, for loops are unrolled, part selects are constant-
// folded, and every reference points at a concrete variable slot.
//
// Both execution backends consume this IR: the event-driven interpreter in
// internal/sim (software engines) and the synthesizer in internal/netlist
// (hardware engines). Sharing one IR is what makes the cross-engine
// equivalence property testable.
package elab

import (
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// Var is a resolved variable: a wire, reg, integer, or memory.
type Var struct {
	Name     string
	Index    int // position in Flat.Vars
	Width    int
	IsReg    bool
	ArrayLen int // 0 for scalars; number of words for memories
	ArrayLo  int // low bound of the unpacked range
	Init     *bits.Vector
	IsInput  bool
	IsOutput bool
}

// Elem reports whether v is a memory.
func (v *Var) IsArray() bool { return v.ArrayLen > 0 }

// Flat is an elaborated subprogram: one module instance, self-contained.
type Flat struct {
	Name     string // instance path (e.g. "main" or "main.r")
	ModName  string // source module name
	Params   map[string]*bits.Vector
	Vars     []*Var
	VarIndex map[string]int
	Inputs   []*Var
	Outputs  []*Var
	Assigns  []*ContAssign
	Procs    []*Proc
	Initials []Stmt
	Source   *verilog.Module
}

// VarNamed returns the variable with the given name, or nil.
func (f *Flat) VarNamed(name string) *Var {
	if i, ok := f.VarIndex[name]; ok {
		return f.Vars[i]
	}
	return nil
}

// ContAssign is a resolved continuous assignment.
type ContAssign struct {
	LHS []LValue // concat targets expand to several lvalues, MSB first
	RHS Expr
}

// EdgeKind is the sensitivity kind for one event.
type EdgeKind int

// Edge kinds.
const (
	Level EdgeKind = iota
	Pos
	Neg
)

// Edge is one sensitivity-list entry, resolved to a variable.
type Edge struct {
	Kind EdgeKind
	Var  *Var
}

// Proc is a resolved always or initial process.
type Proc struct {
	Edges []Edge // empty for @* (use Reads)
	Star  bool
	Body  Stmt
	Reads []*Var // read set of Body (sensitivity closure for @*)
}

// LValue is a resolved assignment target.
type LValue struct {
	Var      *Var
	ArrIndex Expr // non-nil for memory word writes
	HasRange bool // constant part select v[hi:lo]
	Hi, Lo   int
	DynBit   Expr // dynamic single-bit select v[i] on a scalar
}

// TargetWidth returns the number of bits this lvalue writes.
func (lv LValue) TargetWidth() int {
	switch {
	case lv.DynBit != nil:
		return 1
	case lv.HasRange:
		return lv.Hi - lv.Lo + 1
	default:
		return lv.Var.Width
	}
}

// Expr is a resolved, width-annotated expression.
type Expr interface {
	Width() int
}

// Const is a constant value.
type Const struct{ V *bits.Vector }

// VarRef reads a scalar variable.
type VarRef struct{ V *Var }

// ArrayRef reads one word of a memory; Index is zero-based after ArrayLo
// adjustment at elaboration time.
type ArrayRef struct {
	V     *Var
	Index Expr
}

// BitSel is a dynamic single-bit select on a scalar expression.
type BitSel struct {
	X   Expr
	Idx Expr
}

// Slice is a constant part select [Hi:Lo] of X.
type Slice struct {
	X      Expr
	Hi, Lo int
}

// Unary is a resolved unary operation; W is the result width.
type Unary struct {
	Op verilog.UnaryOp
	X  Expr
	W  int
}

// Binary is a resolved binary operation; W is the result width.
type Binary struct {
	Op   verilog.BinaryOp
	X, Y Expr
	W    int
}

// Ternary is a resolved conditional; W is the result width.
type Ternary struct {
	Cond, Then, Else Expr
	W                int
}

// Concat is a resolved concatenation (MSB part first).
type Concat struct {
	Parts []Expr
	W     int
}

// Repl is a resolved replication.
type Repl struct {
	N int
	X Expr
	W int
}

// TimeRef is $time: the runtime's virtual time, 64 bits.
type TimeRef struct{}

// Width implementations.
func (e *Const) Width() int    { return e.V.Width() }
func (e *VarRef) Width() int   { return e.V.Width }
func (e *ArrayRef) Width() int { return e.V.Width }
func (e *BitSel) Width() int   { return 1 }
func (e *Slice) Width() int    { return e.Hi - e.Lo + 1 }
func (e *Unary) Width() int    { return e.W }
func (e *Binary) Width() int   { return e.W }
func (e *Ternary) Width() int  { return e.W }
func (e *Concat) Width() int   { return e.W }
func (e *Repl) Width() int     { return e.W }
func (e *TimeRef) Width() int  { return 64 }

// Stmt is a resolved procedural statement.
type Stmt interface{ stmt() }

// Block is a resolved statement sequence.
type Block struct{ Stmts []Stmt }

// If is a resolved conditional statement.
type If struct {
	Cond Expr
	Then Stmt // may be nil
	Else Stmt // may be nil
}

// CaseItem is one resolved case arm; Labels nil means default. Masks is
// parallel to Labels: a non-nil entry is a casez care mask (1s at the
// specified bits; wildcarded bits always match).
type CaseItem struct {
	Labels []Expr
	Masks  []*bits.Vector
	Body   Stmt
}

// Case is a resolved case statement. Without wildcard labels, casez
// behaves as case in the 2-state model.
type Case struct {
	Subject Expr
	Items   []*CaseItem
}

// Assign is a resolved procedural assignment.
type Assign struct {
	Blocking bool
	LHS      []LValue // concat targets expand; MSB first
	RHS      Expr
}

// TaskKind classifies system tasks.
type TaskKind int

// Task kinds.
const (
	TaskDisplay TaskKind = iota // $display: formatted + newline
	TaskWrite                   // $write: formatted, no newline
	TaskFinish                  // $finish: request shutdown
	TaskMonitor                 // $monitor: re-display on any change
)

// SysTask is a resolved system task.
type SysTask struct {
	Kind   TaskKind
	Format string // empty means "print args space separated as %d"
	Args   []Expr
}

func (*Block) stmt()   {}
func (*If) stmt()      {}
func (*Case) stmt()    {}
func (*Assign) stmt()  {}
func (*SysTask) stmt() {}

// Error is an elaboration error with a source position.
type Error struct {
	Pos verilog.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// WalkExpr visits e and its sub-expressions in pre-order.
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *ArrayRef:
		WalkExpr(x.Index, f)
	case *BitSel:
		WalkExpr(x.X, f)
		WalkExpr(x.Idx, f)
	case *Slice:
		WalkExpr(x.X, f)
	case *Unary:
		WalkExpr(x.X, f)
	case *Binary:
		WalkExpr(x.X, f)
		WalkExpr(x.Y, f)
	case *Ternary:
		WalkExpr(x.Cond, f)
		WalkExpr(x.Then, f)
		WalkExpr(x.Else, f)
	case *Concat:
		for _, p := range x.Parts {
			WalkExpr(p, f)
		}
	case *Repl:
		WalkExpr(x.X, f)
	}
}

// WalkStmt visits s and its sub-statements/expressions in pre-order;
// fe may be nil.
func WalkStmt(s Stmt, fs func(Stmt), fe func(Expr)) {
	if s == nil {
		return
	}
	if fs != nil {
		fs(s)
	}
	we := func(e Expr) {
		if fe != nil {
			WalkExpr(e, fe)
		}
	}
	switch x := s.(type) {
	case *Block:
		for _, st := range x.Stmts {
			WalkStmt(st, fs, fe)
		}
	case *If:
		we(x.Cond)
		WalkStmt(x.Then, fs, fe)
		WalkStmt(x.Else, fs, fe)
	case *Case:
		we(x.Subject)
		for _, it := range x.Items {
			for _, l := range it.Labels {
				we(l)
			}
			WalkStmt(it.Body, fs, fe)
		}
	case *Assign:
		we(x.RHS)
		for _, lv := range x.LHS {
			if lv.ArrIndex != nil {
				we(lv.ArrIndex)
			}
			if lv.DynBit != nil {
				we(lv.DynBit)
			}
		}
	case *SysTask:
		for _, a := range x.Args {
			we(a)
		}
	}
}
