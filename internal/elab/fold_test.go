package elab

import (
	"testing"

	"cascade/internal/bits"
)

func rhsOf(t *testing.T, src string) Expr {
	t.Helper()
	f := elaborate(t, src, nil)
	return f.Assigns[len(f.Assigns)-1].RHS
}

func TestFoldConstantArithmetic(t *testing.T) {
	e := rhsOf(t, `module M(output wire [7:0] o); assign o = 8'd2 + 8'd3 * 8'd4; endmodule`)
	c, ok := e.(*Const)
	if !ok {
		t.Fatalf("not folded: %T", e)
	}
	if c.V.Uint64() != 14 {
		t.Fatalf("folded to %d", c.V.Uint64())
	}
}

func TestFoldConcatSliceRepl(t *testing.T) {
	e := rhsOf(t, `module M(output wire [11:0] o); assign o = {2'b10, {2{3'b011}}, 4'hf[3:2]}; endmodule`)
	if _, ok := e.(*Const); !ok {
		t.Fatalf("concat of constants not folded: %T", e)
	}
}

func TestFoldTernarySelectsArm(t *testing.T) {
	e := rhsOf(t, `module M(input wire [7:0] x, output wire [7:0] o); assign o = 1'b1 ? x : 8'hff; endmodule`)
	if _, ok := e.(*VarRef); !ok {
		t.Fatalf("const-cond ternary should select the arm: %T", e)
	}
}

func TestFoldIdentities(t *testing.T) {
	for _, src := range []string{
		`module M(input wire [7:0] x, output wire [7:0] o); assign o = x + 8'd0; endmodule`,
		`module M(input wire [7:0] x, output wire [7:0] o); assign o = x * 8'd1; endmodule`,
		`module M(input wire [7:0] x, output wire [7:0] o); assign o = x & 8'hff; endmodule`,
		`module M(input wire [7:0] x, output wire [7:0] o); assign o = x >> 8'd0; endmodule`,
	} {
		e := rhsOf(t, src)
		if _, ok := e.(*VarRef); !ok {
			t.Errorf("identity not simplified in %q: %T", src, e)
		}
	}
	e := rhsOf(t, `module M(input wire [7:0] x, output wire [7:0] o); assign o = x & 8'h00; endmodule`)
	if c, ok := e.(*Const); !ok || !c.V.IsZero() {
		t.Errorf("x&0 should fold to zero: %T", e)
	}
}

func TestFoldDoesNotTruncateEarly(t *testing.T) {
	// (0 - 1) at 32 bits under a 40-bit assignment context: the
	// subtraction must NOT fold before widening, or the high 8 bits
	// would wrongly read zero. Verify by value.
	f := elaborate(t, `
module M(output wire [39:0] o);
  assign o = 32'd0 - 32'd1;
endmodule`, nil)
	v := Eval(f.Assigns[0].RHS, constEnvForTest{})
	want := bits.New(40).Not() // all-ones at 40 bits
	if !v.Resize(40).Equal(want) {
		t.Fatalf("borrow lost: got %v, want %v", v.Resize(40), want)
	}
}

type constEnvForTest struct{}

func (constEnvForTest) VarValue(v *Var) *bits.Vector         { return bits.New(v.Width) }
func (constEnvForTest) ArrayWord(v *Var, i int) *bits.Vector { return bits.New(v.Width) }
func (constEnvForTest) Now() uint64                          { return 0 }

func TestFoldSafeArithmeticStillFolds(t *testing.T) {
	// 3 - 1 fits without borrowing: folds even pre-widening.
	e := rhsOf(t, `module M(output wire [39:0] o); assign o = 32'd3 - 32'd1; endmodule`)
	if c, ok := e.(*Const); !ok || c.V.Uint64() != 2 {
		t.Fatalf("safe sub not folded: %T", e)
	}
}

func TestFoldReductionOfConst(t *testing.T) {
	e := rhsOf(t, `module M(output wire o); assign o = &4'hf; endmodule`)
	if c, ok := e.(*Const); !ok || !c.V.Bool() {
		t.Fatalf("reduction not folded: %T", e)
	}
}

func TestFoldBitNotStaysUnfolded(t *testing.T) {
	// ~const is width-sensitive under widening: must not fold early.
	e := rhsOf(t, `module M(output wire [39:0] o); assign o = ~32'd0; endmodule`)
	if _, ok := e.(*Const); ok {
		t.Fatal("~const folded before widening (width-unsafe)")
	}
	f := elaborate(t, `module M(output wire [39:0] o); assign o = ~32'd0; endmodule`, nil)
	v := Eval(f.Assigns[0].RHS, constEnvForTest{})
	if !v.Resize(40).Equal(bits.New(40).Not()) {
		t.Fatalf("~0 at widened width wrong: %v", v)
	}
}
