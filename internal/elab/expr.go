package elab

import (
	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// expr resolves an AST expression against the current scope, computes
// self-determined widths bottom-up, and constant-folds the result (see
// fold.go). Context widening (Verilog's rule that an assignment target or
// comparison widens its operands so carries are not lost) is applied
// afterwards by widenContext.
func (e *elaborator) expr(x verilog.Expr) (Expr, error) {
	r, err := e.exprRaw(x)
	if err != nil {
		return nil, err
	}
	return fold(r), nil
}

func (e *elaborator) exprRaw(x verilog.Expr) (Expr, error) {
	switch t := x.(type) {
	case *verilog.Number:
		return &Const{V: t.Val}, nil
	case *verilog.StringLit:
		// A string in expression position is its ASCII bytes, MSB first.
		if len(t.Value) == 0 {
			return &Const{V: bits.New(8)}, nil
		}
		v := bits.New(8 * len(t.Value))
		for i := 0; i < len(t.Value); i++ {
			byteVal := bits.FromUint64(8, uint64(t.Value[len(t.Value)-1-i]))
			v.SetSlice(i*8+7, i*8, byteVal)
		}
		return &Const{V: v}, nil
	case *verilog.Ident:
		if lv, ok := e.loopVars[t.Name]; ok {
			return &Const{V: lv}, nil
		}
		if cv, ok := e.consts[t.Name]; ok {
			return &Const{V: cv}, nil
		}
		v := e.flat.VarNamed(t.Name)
		if v == nil {
			return nil, e.errf(t.IdentPos, "undeclared identifier %s", t.Name)
		}
		if v.IsArray() {
			return nil, e.errf(t.IdentPos, "memory %s must be indexed", t.Name)
		}
		return &VarRef{V: v}, nil
	case *verilog.HierIdent:
		return nil, e.errf(t.IdentPos, "internal: hierarchical reference %v survived IR promotion", t.Parts)
	case *verilog.Unary:
		xx, err := e.expr(t.X)
		if err != nil {
			return nil, err
		}
		w := 1
		switch t.Op {
		case verilog.UBitNot, verilog.UNeg, verilog.UPlus:
			w = xx.Width()
		}
		return &Unary{Op: t.Op, X: xx, W: w}, nil
	case *verilog.Binary:
		return e.binary(t)
	case *verilog.Ternary:
		cond, err := e.expr(t.Cond)
		if err != nil {
			return nil, err
		}
		then, err := e.expr(t.Then)
		if err != nil {
			return nil, err
		}
		els, err := e.expr(t.Else)
		if err != nil {
			return nil, err
		}
		w := max(then.Width(), els.Width())
		r := &Ternary{Cond: cond, Then: then, Else: els, W: w}
		widenContext(r.Then, w)
		widenContext(r.Else, w)
		return r, nil
	case *verilog.Index:
		return e.index(t)
	case *verilog.RangeSel:
		return e.rangeSel(t)
	case *verilog.Concat:
		c := &Concat{}
		for _, p := range t.Parts {
			rp, err := e.expr(p)
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, rp)
			c.W += rp.Width()
		}
		return c, nil
	case *verilog.Repl:
		n, err := e.constExpr(t.Count)
		if err != nil {
			return nil, err
		}
		cnt := int(n.Uint64())
		if cnt < 1 || cnt > 1<<16 {
			return nil, e.errf(t.LPos, "replication count %d out of range", cnt)
		}
		xx, err := e.expr(t.X)
		if err != nil {
			return nil, err
		}
		return &Repl{N: cnt, X: xx, W: cnt * xx.Width()}, nil
	case *verilog.SysCall:
		if t.Name == "$time" {
			return &TimeRef{}, nil
		}
		return nil, e.errf(t.CallPos, "unsupported system function %s", t.Name)
	}
	return nil, e.errf(x.Pos(), "unsupported expression %T", x)
}

func (e *elaborator) binary(t *verilog.Binary) (Expr, error) {
	xx, err := e.expr(t.X)
	if err != nil {
		return nil, err
	}
	yy, err := e.expr(t.Y)
	if err != nil {
		return nil, err
	}
	var w int
	switch t.Op {
	case verilog.BAdd, verilog.BSub, verilog.BMul, verilog.BDiv, verilog.BMod,
		verilog.BBitAnd, verilog.BBitOr, verilog.BBitXor, verilog.BBitXnor:
		w = max(xx.Width(), yy.Width())
	case verilog.BPow, verilog.BShl, verilog.BShr, verilog.BAShl, verilog.BAShr:
		w = xx.Width()
	case verilog.BEq, verilog.BNeq, verilog.BCaseEq, verilog.BCaseNeq,
		verilog.BLt, verilog.BLe, verilog.BGt, verilog.BGe:
		// Comparison operands form their own context.
		cw := max(xx.Width(), yy.Width())
		widenContext(xx, cw)
		widenContext(yy, cw)
		w = 1
	case verilog.BLogAnd, verilog.BLogOr:
		w = 1
	default:
		return nil, e.errf(t.OpPos, "unsupported binary operator")
	}
	return &Binary{Op: t.Op, X: xx, Y: yy, W: w}, nil
}

func (e *elaborator) index(t *verilog.Index) (Expr, error) {
	// Memory word select needs the base to be a plain identifier.
	if id, ok := t.X.(*verilog.Ident); ok {
		if _, isLoop := e.loopVars[id.Name]; !isLoop {
			if _, isConst := e.consts[id.Name]; !isConst {
				v := e.flat.VarNamed(id.Name)
				if v == nil {
					return nil, e.errf(id.IdentPos, "undeclared identifier %s", id.Name)
				}
				if v.IsArray() {
					idx, err := e.expr(t.Idx)
					if err != nil {
						return nil, err
					}
					return &ArrayRef{V: v, Index: e.adjustArrayIndex(v, idx)}, nil
				}
			}
		}
	}
	xx, err := e.expr(t.X)
	if err != nil {
		return nil, err
	}
	idx, err := e.expr(t.Idx)
	if err != nil {
		return nil, err
	}
	if c, ok := idx.(*Const); ok {
		bit := int(c.V.Uint64())
		if bit >= xx.Width() {
			return nil, e.errf(t.LPos, "bit select [%d] out of range (width %d)", bit, xx.Width())
		}
		return &Slice{X: xx, Hi: bit, Lo: bit}, nil
	}
	return &BitSel{X: xx, Idx: idx}, nil
}

func (e *elaborator) rangeSel(t *verilog.RangeSel) (Expr, error) {
	xx, err := e.expr(t.X)
	if err != nil {
		return nil, err
	}
	hi, err := e.constExpr(t.Hi)
	if err != nil {
		return nil, err
	}
	lo, err := e.constExpr(t.Lo)
	if err != nil {
		return nil, err
	}
	h, l := int(hi.Uint64()), int(lo.Uint64())
	if h < l || h >= xx.Width() {
		return nil, e.errf(t.LPos, "part select [%d:%d] out of range (width %d)", h, l, xx.Width())
	}
	return &Slice{X: xx, Hi: h, Lo: l}, nil
}

// widenContext pushes an assignment or comparison context width w down
// through context-determined operands, enlarging result widths so carries
// and borrows are preserved, mirroring the IEEE sizing rules for the
// unsigned subset. Self-determined positions (shift amounts, concat parts,
// index subscripts, reduction operands, condition of ?:) stop propagation.
func widenContext(e Expr, w int) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case verilog.BAdd, verilog.BSub, verilog.BMul, verilog.BDiv, verilog.BMod,
			verilog.BBitAnd, verilog.BBitOr, verilog.BBitXor, verilog.BBitXnor:
			if w > x.W {
				x.W = w
			}
			widenContext(x.X, x.W)
			widenContext(x.Y, x.W)
		case verilog.BShl, verilog.BShr, verilog.BAShl, verilog.BAShr, verilog.BPow:
			if w > x.W {
				x.W = w
			}
			widenContext(x.X, x.W)
		}
	case *Unary:
		switch x.Op {
		case verilog.UBitNot, verilog.UNeg, verilog.UPlus:
			if w > x.W {
				x.W = w
			}
			widenContext(x.X, x.W)
		}
	case *Ternary:
		if w > x.W {
			x.W = w
		}
		widenContext(x.Then, x.W)
		widenContext(x.Else, x.W)
	}
}
