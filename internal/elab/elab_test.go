package elab

import (
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

func parseOne(t *testing.T, src string) *verilog.Module {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("parse: %v", errs)
	}
	return st.Modules[0]
}

func elaborate(t *testing.T, src string, params map[string]*bits.Vector) *Flat {
	t.Helper()
	f, err := Elaborate(parseOne(t, src), "dut", params)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return f
}

func elaborateErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Elaborate(parseOne(t, src), "dut", nil)
	if err == nil {
		t.Fatalf("expected elaboration error for:\n%s", src)
	}
	return err
}

func TestElaborateRol(t *testing.T) {
	f := elaborate(t, `
module Rol(input wire [7:0] x, output wire [7:0] y);
  assign y = (x == 8'h80) ? 1 : (x << 1);
endmodule`, nil)
	if len(f.Inputs) != 1 || f.Inputs[0].Name != "x" || f.Inputs[0].Width != 8 {
		t.Fatalf("inputs wrong: %+v", f.Inputs)
	}
	if len(f.Outputs) != 1 || f.Outputs[0].Name != "y" {
		t.Fatalf("outputs wrong: %+v", f.Outputs)
	}
	if len(f.Assigns) != 1 {
		t.Fatal("expected one assign")
	}
	// The unsized literal 1 is 32 bits, so the ternary is 32 bits and is
	// truncated at the assignment boundary (IEEE sizing rules).
	tern := f.Assigns[0].RHS.(*Ternary)
	if tern.Width() != 32 {
		t.Fatalf("ternary width: %d", tern.Width())
	}
}

func TestParameterBindingAndOverride(t *testing.T) {
	src := `
module C#(parameter N = 4)(output wire [N-1:0] o);
  localparam HALF = N / 2;
  wire [HALF-1:0] h;
  assign o = 0;
endmodule`
	f := elaborate(t, src, nil)
	if f.VarNamed("o").Width != 4 || f.VarNamed("h").Width != 2 {
		t.Fatalf("default param widths wrong: o=%d h=%d", f.VarNamed("o").Width, f.VarNamed("h").Width)
	}
	f = elaborate(t, src, map[string]*bits.Vector{"N": bits.FromUint64(32, 8)})
	if f.VarNamed("o").Width != 8 || f.VarNamed("h").Width != 4 {
		t.Fatalf("override widths wrong: o=%d h=%d", f.VarNamed("o").Width, f.VarNamed("h").Width)
	}
	if _, err := Elaborate(parseOne(t, src), "dut", map[string]*bits.Vector{"Q": bits.FromUint64(32, 8)}); err == nil {
		t.Fatal("unknown parameter override should fail")
	}
}

func TestRegInitializers(t *testing.T) {
	f := elaborate(t, `
module M();
  reg [7:0] cnt = 1;
  reg [7:0] z;
endmodule`, nil)
	if f.VarNamed("cnt").Init.Uint64() != 1 {
		t.Fatal("cnt init wrong")
	}
	if f.VarNamed("z").Init != nil {
		t.Fatal("z should have no init")
	}
}

func TestForUnrolling(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk);
  integer i;
  reg [31:0] acc;
  always @(posedge clk)
    for (i = 0; i < 4; i = i + 1)
      acc = acc + i;
endmodule`, nil)
	body := f.Procs[0].Body.(*Block)
	if len(body.Stmts) != 4 {
		t.Fatalf("unrolled to %d stmts, want 4", len(body.Stmts))
	}
	// Third iteration should add the constant 2.
	a := body.Stmts[2].(*Assign)
	add := a.RHS.(*Binary)
	c := add.Y.(*Const)
	if c.V.Uint64() != 2 {
		t.Fatalf("loop constant: got %d, want 2", c.V.Uint64())
	}
}

func TestForNonConstantBoundFails(t *testing.T) {
	err := elaborateErr(t, `
module M(input wire [3:0] n, input wire clk);
  integer i;
  reg [3:0] a;
  always @(posedge clk)
    for (i = 0; i < n; i = i + 1) a = a + 1;
endmodule`)
	if !strings.Contains(err.Error(), "constant") {
		t.Fatalf("error should mention constant bounds: %v", err)
	}
}

func TestMemoryDeclAndAccess(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk, input wire [5:0] addr, output wire [31:0] q);
  reg [31:0] mem [0:63];
  assign q = mem[addr];
  always @(posedge clk) mem[addr] <= q + 1;
endmodule`, nil)
	mem := f.VarNamed("mem")
	if mem.ArrayLen != 64 || mem.Width != 32 {
		t.Fatalf("mem shape wrong: %+v", mem)
	}
	if _, ok := f.Assigns[0].RHS.(*ArrayRef); !ok {
		t.Fatal("q should read an ArrayRef")
	}
	asg := f.Procs[0].Body.(*Assign)
	if asg.LHS[0].ArrIndex == nil {
		t.Fatal("mem write should have array index")
	}
}

func TestMemoryWithNonZeroLowBound(t *testing.T) {
	f := elaborate(t, `
module M(input wire [3:0] a, output wire [7:0] q);
  reg [7:0] mem [2:5];
  assign q = mem[a];
endmodule`, nil)
	mem := f.VarNamed("mem")
	if mem.ArrayLen != 4 || mem.ArrayLo != 2 {
		t.Fatalf("mem bounds wrong: %+v", mem)
	}
	ar := f.Assigns[0].RHS.(*ArrayRef)
	if _, ok := ar.Index.(*Binary); !ok {
		t.Fatal("index should be rebased by low bound")
	}
}

func TestWidthRules(t *testing.T) {
	f := elaborate(t, `
module M(input wire [3:0] a, input wire [7:0] b, output wire [11:0] o, output wire c);
  assign o = a + b;
  assign c = a < b;
endmodule`, nil)
	add := f.Assigns[0].RHS.(*Binary)
	if add.Width() != 12 {
		t.Fatalf("assignment context should widen a+b to 12, got %d", add.Width())
	}
	cmp := f.Assigns[1].RHS.(*Binary)
	if cmp.Width() != 1 {
		t.Fatalf("comparison width should be 1, got %d", cmp.Width())
	}
}

func TestConcatAndReplWidths(t *testing.T) {
	f := elaborate(t, `
module M(input wire [3:0] a, output wire [19:0] o);
  assign o = {a, 2'b01, {2{a[1:0]}}, a[3], {5{1'b1}}};
endmodule`, nil)
	cc := f.Assigns[0].RHS.(*Concat)
	if cc.Width() != 4+2+4+1+5 {
		t.Fatalf("concat width: %d", cc.Width())
	}
}

func TestLValueForms(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk, input wire [2:0] i);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= 1;
    r[3] <= 0;
    r[i] <= 1;
    r[7:4] <= 4'hf;
  end
endmodule`, nil)
	b := f.Procs[0].Body.(*Block)
	a0 := b.Stmts[0].(*Assign).LHS[0]
	if a0.HasRange || a0.DynBit != nil {
		t.Fatal("full write wrong")
	}
	a1 := b.Stmts[1].(*Assign).LHS[0]
	if !a1.HasRange || a1.Hi != 3 || a1.Lo != 3 {
		t.Fatal("const bit write wrong")
	}
	a2 := b.Stmts[2].(*Assign).LHS[0]
	if a2.DynBit == nil {
		t.Fatal("dynamic bit write wrong")
	}
	a3 := b.Stmts[3].(*Assign).LHS[0]
	if !a3.HasRange || a3.Hi != 7 || a3.Lo != 4 {
		t.Fatal("part write wrong")
	}
}

func TestConcatLValue(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk);
  reg [3:0] hi, lo;
  always @(posedge clk) {hi, lo} <= 8'hab;
endmodule`, nil)
	a := f.Procs[0].Body.(*Assign)
	if len(a.LHS) != 2 || a.LHS[0].Var.Name != "hi" || a.LHS[1].Var.Name != "lo" {
		t.Fatalf("concat lvalue wrong: %+v", a.LHS)
	}
}

func TestSysTasks(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk);
  reg [7:0] x;
  always @(posedge clk) begin
    $display("%d %h", x, x);
    $display(x);
    $write("no newline");
    $finish;
  end
endmodule`, nil)
	b := f.Procs[0].Body.(*Block)
	d0 := b.Stmts[0].(*SysTask)
	if d0.Kind != TaskDisplay || d0.Format != "%d %h" || len(d0.Args) != 2 {
		t.Fatalf("display wrong: %+v", d0)
	}
	d1 := b.Stmts[1].(*SysTask)
	if d1.Format != "" || len(d1.Args) != 1 {
		t.Fatalf("bare display wrong: %+v", d1)
	}
	if b.Stmts[2].(*SysTask).Kind != TaskWrite {
		t.Fatal("write wrong")
	}
	if b.Stmts[3].(*SysTask).Kind != TaskFinish {
		t.Fatal("finish wrong")
	}
}

func TestSensitivityReadSet(t *testing.T) {
	f := elaborate(t, `
module M(input wire [1:0] s, input wire [7:0] a, input wire [7:0] b, output reg [7:0] o);
  always @(*)
    if (s == 0) o = a;
    else o = b;
endmodule`, nil)
	p := f.Procs[0]
	if !p.Star {
		t.Fatal("should be star-sensitive")
	}
	names := map[string]bool{}
	for _, v := range p.Reads {
		names[v.Name] = true
	}
	if !names["s"] || !names["a"] || !names["b"] || names["o"] {
		t.Fatalf("read set wrong: %v", names)
	}
}

func TestDriverClassErrors(t *testing.T) {
	elaborateErr(t, `
module M();
  reg r;
  assign r = 1;
endmodule`)
	elaborateErr(t, `
module M(input wire clk);
  wire w;
  always @(posedge clk) w <= 1;
endmodule`)
	elaborateErr(t, `
module M(input wire i);
  assign i = 1;
endmodule`)
}

func TestErrorCases(t *testing.T) {
	cases := []string{
		`module M(); wire x; assign y = x; endmodule`,                              // undeclared
		`module M(); wire x; wire x; endmodule`,                                    // duplicate
		`module M(); wire [0:7] x; endmodule`,                                      // non-[N:0] range
		`module M(input wire [3:0] a); wire y; assign y = a[9]; endmodule`,         // oob bit
		`module M(input wire [3:0] a); wire [9:0] y; assign y = a[9:0]; endmodule`, // oob slice
		`module M(); reg [7:0] m [0:3]; wire x; assign x = m; endmodule`,           // bare memory
		`module M(input wire clk); always @(posedge clk) $strobe; endmodule`,       // unknown task
		`module M(inout wire x); endmodule`,                                        // inout
	}
	for _, src := range cases {
		elaborateErr(t, src)
	}
}

func TestStringLiteralExpr(t *testing.T) {
	f := elaborate(t, `
module M(output wire [15:0] o);
  assign o = "ok";
endmodule`, nil)
	c := f.Assigns[0].RHS.(*Const)
	if c.V.Width() != 16 {
		t.Fatalf("string width: %d", c.V.Width())
	}
	if c.V.Uint64() != uint64('o')<<8|uint64('k') {
		t.Fatalf("string packing wrong: %x", c.V.Uint64())
	}
}

func TestEvalConstFolding(t *testing.T) {
	f := elaborate(t, `
module M#(parameter N = 3)(output wire [7:0] o);
  localparam V = (N + 1) * 4 - 2 ** 2 + {2'b10, 2'b01};
  assign o = V;
endmodule`, nil)
	// (3+1)*4 - 4 + 0b1001 = 16-4+9 = 21
	if got := f.Params["V"].Uint64(); got != 21 {
		t.Fatalf("localparam V: got %d, want 21", got)
	}
}

func TestTimeRef(t *testing.T) {
	f := elaborate(t, `
module M(input wire clk);
  always @(posedge clk) $display("%d", $time);
endmodule`, nil)
	st := f.Procs[0].Body.(*SysTask)
	if _, ok := st.Args[0].(*TimeRef); !ok {
		t.Fatal("$time should resolve to TimeRef")
	}
}
