package elab

import (
	"errors"
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// Env supplies runtime values to Eval. The software engine implements it
// over its variable store; constant folding uses a nil-like env that
// rejects variable reads.
type Env interface {
	// VarValue returns the current value of a scalar variable.
	VarValue(v *Var) *bits.Vector
	// ArrayWord returns word i (zero-based) of a memory; out-of-range
	// reads yield zero.
	ArrayWord(v *Var, i int) *bits.Vector
	// Now returns the current virtual time for $time.
	Now() uint64
}

// Eval evaluates a resolved expression under env. The result width always
// equals e.Width(). This function defines the reference semantics that the
// compiled netlist evaluator must match (tested in internal/netlist).
func Eval(e Expr, env Env) *bits.Vector {
	switch x := e.(type) {
	case *Const:
		return x.V
	case *VarRef:
		return env.VarValue(x.V)
	case *ArrayRef:
		idx := Eval(x.Index, env)
		i := int(idx.Uint64())
		if !idx.Equal(bits.FromUint64(64, uint64(i))) || i >= x.V.ArrayLen {
			return bits.New(x.V.Width)
		}
		return env.ArrayWord(x.V, i)
	case *BitSel:
		v := Eval(x.X, env)
		idx := Eval(x.Idx, env)
		i := int(idx.Uint64())
		if !idx.Equal(bits.FromUint64(64, uint64(i))) || i >= v.Width() {
			return bits.New(1)
		}
		return bits.FromUint64(1, uint64(v.Bit(i)))
	case *Slice:
		return Eval(x.X, env).Slice(x.Hi, x.Lo)
	case *Unary:
		return evalUnary(x, env)
	case *Binary:
		return evalBinary(x, env)
	case *Ternary:
		if Eval(x.Cond, env).Bool() {
			return Eval(x.Then, env).Resize(x.W)
		}
		return Eval(x.Else, env).Resize(x.W)
	case *Concat:
		out := Eval(x.Parts[0], env)
		for _, p := range x.Parts[1:] {
			out = out.Concat(Eval(p, env))
		}
		return out
	case *Repl:
		return Eval(x.X, env).Repl(x.N)
	case *TimeRef:
		return bits.FromUint64(64, env.Now())
	}
	panic(fmt.Sprintf("elab: unknown expression %T", e))
}

func evalUnary(x *Unary, env Env) *bits.Vector {
	v := Eval(x.X, env)
	switch x.Op {
	case verilog.UNot:
		return bits.FromBool(!v.Bool())
	case verilog.UBitNot:
		return v.Resize(x.W).Not()
	case verilog.UNeg:
		return v.Resize(x.W).Neg()
	case verilog.UPlus:
		return v.Resize(x.W)
	case verilog.URedAnd:
		return v.RedAnd()
	case verilog.URedOr:
		return v.RedOr()
	case verilog.URedXor:
		return v.RedXor()
	case verilog.URedNand:
		return bits.FromBool(!v.RedAnd().Bool())
	case verilog.URedNor:
		return bits.FromBool(!v.RedOr().Bool())
	case verilog.URedXnor:
		return bits.FromBool(!v.RedXor().Bool())
	}
	panic(fmt.Sprintf("elab: unknown unary op %d", x.Op))
}

func evalBinary(x *Binary, env Env) *bits.Vector {
	// Logical operators short-circuit.
	switch x.Op {
	case verilog.BLogAnd:
		if !Eval(x.X, env).Bool() {
			return bits.FromBool(false)
		}
		return bits.FromBool(Eval(x.Y, env).Bool())
	case verilog.BLogOr:
		if Eval(x.X, env).Bool() {
			return bits.FromBool(true)
		}
		return bits.FromBool(Eval(x.Y, env).Bool())
	}
	a := Eval(x.X, env)
	b := Eval(x.Y, env)
	switch x.Op {
	case verilog.BAdd:
		return a.Resize(x.W).Add(b.Resize(x.W))
	case verilog.BSub:
		return a.Resize(x.W).Sub(b.Resize(x.W))
	case verilog.BMul:
		return a.Resize(x.W).Mul(b.Resize(x.W))
	case verilog.BDiv:
		return a.Resize(x.W).Div(b.Resize(x.W))
	case verilog.BMod:
		return a.Resize(x.W).Mod(b.Resize(x.W))
	case verilog.BPow:
		return a.Resize(x.W).Pow(b)
	case verilog.BBitAnd:
		return a.Resize(x.W).And(b.Resize(x.W))
	case verilog.BBitOr:
		return a.Resize(x.W).Or(b.Resize(x.W))
	case verilog.BBitXor:
		return a.Resize(x.W).Xor(b.Resize(x.W))
	case verilog.BBitXnor:
		return a.Resize(x.W).Xnor(b.Resize(x.W))
	case verilog.BShl, verilog.BAShl:
		return a.Resize(x.W).Shl(b)
	case verilog.BShr, verilog.BAShr:
		// All values are unsigned, so >>> behaves as >> (documented).
		return a.Resize(x.W).Shr(b)
	case verilog.BEq, verilog.BCaseEq:
		return bits.FromBool(a.Equal(b))
	case verilog.BNeq, verilog.BCaseNeq:
		return bits.FromBool(!a.Equal(b))
	case verilog.BLt:
		return bits.FromBool(a.Cmp(b) < 0)
	case verilog.BLe:
		return bits.FromBool(a.Cmp(b) <= 0)
	case verilog.BGt:
		return bits.FromBool(a.Cmp(b) > 0)
	case verilog.BGe:
		return bits.FromBool(a.Cmp(b) >= 0)
	}
	panic(fmt.Sprintf("elab: unknown binary op %d", x.Op))
}

// errNotConst marks an attempted variable read during constant folding.
var errNotConst = errors.New("expression is not constant")

type constEnv struct{}

func (constEnv) VarValue(v *Var) *bits.Vector         { panic(errNotConst) }
func (constEnv) ArrayWord(v *Var, i int) *bits.Vector { panic(errNotConst) }
func (constEnv) Now() uint64                          { panic(errNotConst) }

// EvalConst evaluates e if it is a compile-time constant.
func EvalConst(e Expr) (v *bits.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			if rerr, ok := r.(error); ok && errors.Is(rerr, errNotConst) {
				v, err = nil, errNotConst
				return
			}
			panic(r)
		}
	}()
	return Eval(e, constEnv{}), nil
}

// constExpr resolves an AST expression and requires it to fold to a
// constant (parameters and loop variables count as constants).
func (e *elaborator) constExpr(x verilog.Expr) (*bits.Vector, error) {
	r, err := e.expr(x)
	if err != nil {
		return nil, err
	}
	v, err := EvalConst(r)
	if err != nil {
		return nil, e.errf(x.Pos(), "expected constant expression")
	}
	return v, nil
}
