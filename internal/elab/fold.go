package elab

import (
	"math/big"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// fold performs constant folding and width-safe algebraic simplification
// on a freshly built expression node. Both execution backends benefit:
// the interpreter evaluates fewer nodes and the synthesizer emits fewer
// cells.
//
// Folding happens before context widening (widenContext may later enlarge
// result widths), so only rewrites whose value zero-extends identically at
// any wider width are allowed: truncating arithmetic (overflowing add or
// mul, borrowing sub, ~, -) is left unfolded, because the same operation
// at a widened context would produce different high bits.
func fold(e Expr) Expr {
	switch x := e.(type) {
	case *Unary:
		if !isConst(x.X) {
			return e
		}
		switch x.Op {
		case verilog.UPlus:
			return x.X
		case verilog.UBitNot, verilog.UNeg:
			// Width-sensitive under later widening; only the trivial
			// -0 == 0 case is safe.
			if x.Op == verilog.UNeg && x.X.(*Const).V.IsZero() {
				return x.X
			}
			return e
		default:
			// Reductions and ! are 1-bit, insensitive to widening.
			return foldToConst(e)
		}
	case *Binary:
		if isConst(x.X) && isConst(x.Y) {
			if foldedBinarySafe(x) {
				return foldToConst(e)
			}
		}
		return foldBinaryIdentity(x)
	case *Ternary:
		if c, ok := x.Cond.(*Const); ok {
			if c.V.Bool() {
				return x.Then
			}
			return x.Else
		}
	case *Slice:
		if c, ok := x.X.(*Const); ok {
			return &Const{V: c.V.Slice(x.Hi, x.Lo)}
		}
	case *BitSel:
		if isConst(x.X) && isConst(x.Idx) {
			return foldToConst(e)
		}
	case *Concat:
		for _, p := range x.Parts {
			if !isConst(p) {
				return e
			}
		}
		return foldToConst(e)
	case *Repl:
		if isConst(x.X) {
			return foldToConst(e)
		}
	}
	return e
}

func isConst(e Expr) bool {
	_, ok := e.(*Const)
	return ok
}

// foldedBinarySafe reports whether folding this constant binary operation
// now yields the same value it would at any widened context width: the
// mathematically exact result must fit in W bits without truncation or
// borrowing.
func foldedBinarySafe(x *Binary) bool {
	a := x.X.(*Const).V.Big()
	b := x.Y.(*Const).V.Big()
	switch x.Op {
	case verilog.BAdd:
		return new(big.Int).Add(a, b).BitLen() <= x.W
	case verilog.BMul:
		return new(big.Int).Mul(a, b).BitLen() <= x.W
	case verilog.BSub:
		return a.Cmp(b) >= 0
	case verilog.BShl, verilog.BAShl:
		if !b.IsInt64() || b.Int64() > 1<<16 {
			return false
		}
		return new(big.Int).Lsh(a, uint(b.Int64())).BitLen() <= x.W
	case verilog.BPow:
		if !b.IsInt64() || b.Int64() > 64 {
			return false
		}
		return new(big.Int).Exp(a, b, nil).BitLen() <= x.W
	case verilog.BDiv, verilog.BMod, verilog.BShr, verilog.BAShr,
		verilog.BBitAnd, verilog.BBitOr, verilog.BBitXor:
		// Results never exceed the operands' magnitudes (or are pure
		// bitwise combinations of zero-extended operands).
		return true
	case verilog.BEq, verilog.BNeq, verilog.BCaseEq, verilog.BCaseNeq,
		verilog.BLt, verilog.BLe, verilog.BGt, verilog.BGe,
		verilog.BLogAnd, verilog.BLogOr:
		// One-bit results, width-insensitive.
		return true
	case verilog.BBitXnor:
		// Complements high bits: width-sensitive.
		return false
	}
	return false
}

// foldToConst evaluates a constant subtree; on any failure the original
// expression is returned unchanged.
func foldToConst(e Expr) Expr {
	v, err := EvalConst(e)
	if err != nil {
		return e
	}
	return &Const{V: v}
}

// foldBinaryIdentity applies widening-safe identities: x+0, x-0, x|0,
// x^0, x<<0, x>>0, x*1, x&~0, x*0, x&0. Replacements must have the same
// width as the node so truncation semantics are preserved.
func foldBinaryIdentity(x *Binary) Expr {
	cY, yConst := x.Y.(*Const)
	cX, xConst := x.X.(*Const)
	sameWidth := func(e Expr) bool { return e.Width() == x.W }
	zero := func(c *Const) bool { return c.V.IsZero() }
	one := func(c *Const) bool { return c.V.Big().Cmp(big.NewInt(1)) == 0 }
	allOnes := func(c *Const) bool { return c.V.Width() >= x.W && c.V.Slice(x.W-1, 0).RedAnd().Bool() }

	switch x.Op {
	case verilog.BAdd, verilog.BBitOr, verilog.BBitXor:
		if yConst && zero(cY) && sameWidth(x.X) {
			return x.X
		}
		if xConst && zero(cX) && sameWidth(x.Y) {
			return x.Y
		}
	case verilog.BSub, verilog.BShl, verilog.BShr, verilog.BAShl, verilog.BAShr:
		if yConst && zero(cY) && sameWidth(x.X) {
			return x.X
		}
	case verilog.BMul:
		if (yConst && zero(cY)) || (xConst && zero(cX)) {
			return &Const{V: bits.New(x.W)}
		}
		if yConst && one(cY) && sameWidth(x.X) {
			return x.X
		}
		if xConst && one(cX) && sameWidth(x.Y) {
			return x.Y
		}
	case verilog.BBitAnd:
		if (yConst && zero(cY)) || (xConst && zero(cX)) {
			return &Const{V: bits.New(x.W)}
		}
		if yConst && allOnes(cY) && sameWidth(x.X) {
			return x.X
		}
		if xConst && allOnes(cX) && sameWidth(x.Y) {
			return x.Y
		}
	}
	return x
}
