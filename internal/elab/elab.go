package elab

import (
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/verilog"
)

// maxUnroll caps for-loop unrolling so a runaway loop bound fails fast.
const maxUnroll = 1 << 16

// Elaborate lowers a flat module (no instances, no hierarchical
// references; Cascade's IR pass guarantees both) into a Flat subprogram.
// params supplies final parameter overrides (already evaluated by the
// caller); unknown names are an error.
func Elaborate(mod *verilog.Module, instName string, params map[string]*bits.Vector) (*Flat, error) {
	e := &elaborator{
		flat: &Flat{
			Name:     instName,
			ModName:  mod.Name,
			Params:   map[string]*bits.Vector{},
			VarIndex: map[string]int{},
			Source:   mod,
		},
		consts:   map[string]*bits.Vector{},
		loopVars: map[string]*bits.Vector{},
		assigned: map[*Var]*bits.Vector{},
	}
	if err := e.run(mod, params); err != nil {
		return nil, err
	}
	return e.flat, nil
}

type elaborator struct {
	flat     *Flat
	consts   map[string]*bits.Vector // parameters and localparams
	loopVars map[string]*bits.Vector // active for-loop bindings
	assigned map[*Var]*bits.Vector   // continuous-assign markers

	netInitAssigns []*verilog.ContAssign // wire x = expr desugarings
}

func (e *elaborator) errf(pos verilog.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (e *elaborator) run(mod *verilog.Module, overrides map[string]*bits.Vector) error {
	// Header parameters, in declaration order, with overrides applied.
	declared := map[string]bool{}
	for _, pd := range mod.Params {
		declared[pd.Name] = true
		var v *bits.Vector
		if ov, ok := overrides[pd.Name]; ok {
			v = ov
		} else {
			cv, err := e.constExpr(pd.Value)
			if err != nil {
				return err
			}
			v = cv
		}
		if pd.Range != nil {
			w, err := e.rangeWidth(pd.Range, pd.DeclPos)
			if err != nil {
				return err
			}
			v = v.Resize(w)
		}
		e.consts[pd.Name] = v
		e.flat.Params[pd.Name] = v
	}
	for name := range overrides {
		if !declared[name] {
			return e.errf(mod.NamePos, "module %s has no parameter %s", mod.Name, name)
		}
	}

	// Ports become variables first, in header order.
	for _, pt := range mod.Ports {
		if pt.Dir == verilog.Inout {
			return e.errf(pt.PortPos, "inout ports are not supported")
		}
		w := 1
		if pt.Range != nil {
			var err error
			w, err = e.rangeWidth(pt.Range, pt.PortPos)
			if err != nil {
				return err
			}
		}
		var init *bits.Vector
		if pt.Init != nil {
			cv, cerr := e.constExpr(pt.Init)
			if cerr != nil {
				return cerr
			}
			init = cv.Resize(w)
		}
		v, err := e.declare(pt.Name, w, pt.Kind == verilog.Reg, 0, 0, init, pt.PortPos)
		if err != nil {
			return err
		}
		if pt.Dir == verilog.Input {
			v.IsInput = true
		} else {
			v.IsOutput = true
		}
	}

	// First pass: declarations (so later items can reference later decls
	// is NOT allowed in our model — Verilog requires declaration before
	// use for implicit clarity; we do a decl pre-pass to be permissive,
	// matching common tool behaviour).
	for _, it := range mod.Items {
		switch x := it.(type) {
		case *verilog.ParamDecl:
			cv, err := e.constExpr(x.Value)
			if err != nil {
				return err
			}
			if x.Range != nil {
				w, err := e.rangeWidth(x.Range, x.DeclPos)
				if err != nil {
					return err
				}
				cv = cv.Resize(w)
			}
			if _, dup := e.consts[x.Name]; dup {
				return e.errf(x.DeclPos, "duplicate parameter %s", x.Name)
			}
			e.consts[x.Name] = cv
			e.flat.Params[x.Name] = cv
		case *verilog.NetDecl:
			if err := e.netDecl(x); err != nil {
				return err
			}
		}
	}

	// Net declaration assignments collected by the first pass.
	for _, ca := range e.netInitAssigns {
		if err := e.contAssign(ca); err != nil {
			return err
		}
	}

	// Second pass: behaviour.
	for _, it := range mod.Items {
		switch x := it.(type) {
		case *verilog.ParamDecl, *verilog.NetDecl:
			// handled above
		case *verilog.ContAssign:
			if err := e.contAssign(x); err != nil {
				return err
			}
		case *verilog.AlwaysBlock:
			if err := e.always(x); err != nil {
				return err
			}
		case *verilog.InitialBlock:
			body, err := e.stmt(x.Body)
			if err != nil {
				return err
			}
			if body != nil {
				e.flat.Initials = append(e.flat.Initials, body)
			}
		case *verilog.Instance:
			return e.errf(x.InstPos, "internal: instance %s survived IR flattening", x.Name)
		default:
			return e.errf(it.Pos(), "unsupported module item %T", it)
		}
	}
	e.flat.refreshPortLists()
	return nil
}

func (e *elaborator) declare(name string, width int, isReg bool, arrLen, arrLo int, init *bits.Vector, pos verilog.Pos) (*Var, error) {
	if _, dup := e.flat.VarIndex[name]; dup {
		return nil, e.errf(pos, "duplicate declaration of %s", name)
	}
	if _, dup := e.consts[name]; dup {
		return nil, e.errf(pos, "%s is already declared as a parameter", name)
	}
	if width < 1 {
		return nil, e.errf(pos, "%s has non-positive width %d", name, width)
	}
	v := &Var{
		Name: name, Index: len(e.flat.Vars), Width: width, IsReg: isReg,
		ArrayLen: arrLen, ArrayLo: arrLo, Init: init,
	}
	e.flat.VarIndex[name] = v.Index
	e.flat.Vars = append(e.flat.Vars, v)
	return v, nil
}

// finishPorts records input/output lists after all declarations exist.
func (f *Flat) refreshPortLists() {
	f.Inputs = f.Inputs[:0]
	f.Outputs = f.Outputs[:0]
	for _, v := range f.Vars {
		if v.IsInput {
			f.Inputs = append(f.Inputs, v)
		}
		if v.IsOutput {
			f.Outputs = append(f.Outputs, v)
		}
	}
}

func (e *elaborator) rangeWidth(r *verilog.Range, pos verilog.Pos) (int, error) {
	hi, err := e.constExpr(r.Hi)
	if err != nil {
		return 0, err
	}
	lo, err := e.constExpr(r.Lo)
	if err != nil {
		return 0, err
	}
	h, l := int(hi.Uint64()), int(lo.Uint64())
	if l != 0 {
		return 0, e.errf(pos, "packed ranges must be [N:0], got [%d:%d]", h, l)
	}
	if h < l || h > 1<<20 {
		return 0, e.errf(pos, "invalid range [%d:%d]", h, l)
	}
	return h - l + 1, nil
}

func (e *elaborator) netDecl(d *verilog.NetDecl) error {
	width := 1
	if d.Kind == verilog.Integer {
		width = 32
	} else if d.Range != nil {
		w, err := e.rangeWidth(d.Range, d.DeclPos)
		if err != nil {
			return err
		}
		width = w
	}
	isReg := d.Kind != verilog.Wire
	for _, dn := range d.Names {
		arrLen, arrLo := 0, 0
		if dn.Array != nil {
			hi, err := e.constExpr(dn.Array.Hi)
			if err != nil {
				return err
			}
			lo, err := e.constExpr(dn.Array.Lo)
			if err != nil {
				return err
			}
			h, l := int(hi.Uint64()), int(lo.Uint64())
			if h < l {
				h, l = l, h
			}
			arrLen, arrLo = h-l+1, l
			if arrLen > 1<<22 {
				return e.errf(dn.NamePos, "memory %s too large (%d words)", dn.Name, arrLen)
			}
		}
		var init *bits.Vector
		if dn.Init != nil {
			if arrLen > 0 {
				return e.errf(dn.NamePos, "memory %s cannot have an initializer", dn.Name)
			}
			if isReg {
				cv, err := e.constExpr(dn.Init)
				if err != nil {
					return err
				}
				init = cv.Resize(width)
			}
		}
		if _, err := e.declare(dn.Name, width, isReg, arrLen, arrLo, init, dn.NamePos); err != nil {
			return err
		}
		if dn.Init != nil && !isReg {
			// A net declaration assignment (wire x = expr) is sugar for
			// a continuous assignment; queue it for the behaviour pass.
			e.netInitAssigns = append(e.netInitAssigns, &verilog.ContAssign{
				AssignPos: dn.NamePos,
				LHS:       &verilog.Ident{IdentPos: dn.NamePos, Name: dn.Name},
				RHS:       dn.Init,
			})
		}
	}
	return nil
}

func (e *elaborator) contAssign(a *verilog.ContAssign) error {
	lhs, err := e.lvalue(a.LHS)
	if err != nil {
		return err
	}
	total := 0
	for _, lv := range lhs {
		if lv.Var.IsReg {
			return e.errf(a.AssignPos, "continuous assignment to reg %s (use an always block)", lv.Var.Name)
		}
		if lv.Var.IsInput {
			return e.errf(a.AssignPos, "continuous assignment to input port %s", lv.Var.Name)
		}
		if err := e.checkAssignOverlap(lv, a.AssignPos); err != nil {
			return err
		}
		total += lv.TargetWidth()
	}
	rhs, err := e.expr(a.RHS)
	if err != nil {
		return err
	}
	widenContext(rhs, total)
	e.flat.Assigns = append(e.flat.Assigns, &ContAssign{LHS: lhs, RHS: rhs})
	return nil
}

// checkAssignOverlap rejects a second continuous driver for a wire.
// Multiple drivers would race, and the synthesizer requires a single
// combinational writer per variable, so the rule is enforced here where
// the REPL's trial build can report it before integration.
func (e *elaborator) checkAssignOverlap(lv LValue, pos verilog.Pos) error {
	if _, dup := e.assigned[lv.Var]; dup {
		return e.errf(pos, "%s is driven by more than one continuous assignment", lv.Var.Name)
	}
	e.assigned[lv.Var] = bits.New(1)
	return nil
}

func (e *elaborator) always(a *verilog.AlwaysBlock) error {
	p := &Proc{Star: a.Star}
	for _, ev := range a.Events {
		x, err := e.expr(ev.Expr)
		if err != nil {
			return err
		}
		v := rootVar(x)
		if v == nil {
			return e.errf(a.AlwaysPos, "sensitivity-list entries must be simple signals")
		}
		kind := Level
		switch ev.Edge {
		case verilog.Posedge:
			kind = Pos
		case verilog.Negedge:
			kind = Neg
		}
		p.Edges = append(p.Edges, Edge{Kind: kind, Var: v})
	}
	body, err := e.stmt(a.Body)
	if err != nil {
		return err
	}
	p.Body = body
	p.Reads = readSet(body)
	// Validate driver classes: edge-triggered procs write regs (checked at
	// assignment resolution); here only note the proc drives its targets.
	e.flat.Procs = append(e.flat.Procs, p)
	return nil
}

// rootVar extracts the underlying variable of a simple signal expression.
func rootVar(x Expr) *Var {
	switch t := x.(type) {
	case *VarRef:
		return t.V
	case *Slice:
		return rootVar(t.X)
	case *BitSel:
		return rootVar(t.X)
	}
	return nil
}

// readSet collects the distinct variables read anywhere in s.
func readSet(s Stmt) []*Var {
	seen := map[*Var]bool{}
	var out []*Var
	WalkStmt(s, nil, func(x Expr) {
		var v *Var
		switch t := x.(type) {
		case *VarRef:
			v = t.V
		case *ArrayRef:
			v = t.V
		}
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

func (e *elaborator) stmt(s verilog.Stmt) (Stmt, error) {
	switch x := s.(type) {
	case *verilog.Block:
		b := &Block{}
		for _, st := range x.Stmts {
			rs, err := e.stmt(st)
			if err != nil {
				return nil, err
			}
			if rs != nil {
				b.Stmts = append(b.Stmts, rs)
			}
		}
		if len(b.Stmts) == 0 {
			return nil, nil
		}
		return b, nil
	case *verilog.If:
		cond, err := e.expr(x.Cond)
		if err != nil {
			return nil, err
		}
		// Statically decided branches are pruned (dead-code elimination
		// at the statement level; both backends benefit).
		if c, isConst := cond.(*Const); isConst {
			if c.V.Bool() {
				return e.stmt(x.Then)
			}
			if x.Else != nil {
				return e.stmt(x.Else)
			}
			return nil, nil
		}
		then, err := e.stmt(x.Then)
		if err != nil {
			return nil, err
		}
		var els Stmt
		if x.Else != nil {
			els, err = e.stmt(x.Else)
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case *verilog.Case:
		return e.caseStmt(x)
	case *verilog.ProcAssign:
		return e.procAssign(x)
	case *verilog.For:
		return e.unrollFor(x)
	case *verilog.SysTask:
		return e.sysTask(x)
	case *verilog.NullStmt:
		return nil, nil
	}
	return nil, e.errf(s.Pos(), "unsupported statement %T", s)
}

func (e *elaborator) caseStmt(x *verilog.Case) (Stmt, error) {
	subj, err := e.expr(x.Subject)
	if err != nil {
		return nil, err
	}
	// labelMask extracts a casez wildcard mask from a label literal.
	labelMask := func(le verilog.Expr) (*bits.Vector, error) {
		n, isNum := le.(*verilog.Number)
		if !isNum || n.Mask == nil {
			return nil, nil
		}
		if !x.IsCasez {
			return nil, e.errf(n.NumPos, "wildcard label %s requires casez", n.Literal)
		}
		return n.Mask, nil
	}
	matches := func(labelVal, mask, subjVal *bits.Vector) bool {
		if mask == nil {
			return labelVal.Equal(subjVal)
		}
		return subjVal.Xor(labelVal).And(mask).IsZero()
	}
	// A constant subject with constant labels selects its arm statically.
	if cs, isConst := subj.(*Const); isConst {
		var deflt verilog.Stmt
		decidable := true
		var taken verilog.Stmt
		found := false
		for _, it := range x.Items {
			if it.Exprs == nil {
				deflt = it.Body
				continue
			}
			for _, le := range it.Exprs {
				l, lerr := e.expr(le)
				if lerr != nil {
					return nil, lerr
				}
				m, merr := labelMask(le)
				if merr != nil {
					return nil, merr
				}
				lc, lconst := l.(*Const)
				if !lconst {
					decidable = false
					break
				}
				if !found && matches(lc.V, m, cs.V) {
					taken = it.Body
					found = true
				}
			}
			if !decidable {
				break
			}
		}
		if decidable {
			if found {
				return e.stmt(taken)
			}
			if deflt != nil {
				return e.stmt(deflt)
			}
			return nil, nil
		}
	}
	c := &Case{Subject: subj}
	maxW := subj.Width()
	var allLabels []Expr
	for _, it := range x.Items {
		ci := &CaseItem{}
		for _, le := range it.Exprs {
			l, err := e.expr(le)
			if err != nil {
				return nil, err
			}
			m, merr := labelMask(le)
			if merr != nil {
				return nil, merr
			}
			if l.Width() > maxW {
				maxW = l.Width()
			}
			ci.Labels = append(ci.Labels, l)
			ci.Masks = append(ci.Masks, m)
			allLabels = append(allLabels, l)
		}
		body, err := e.stmt(it.Body)
		if err != nil {
			return nil, err
		}
		ci.Body = body
		c.Items = append(c.Items, ci)
	}
	widenContext(subj, maxW)
	for _, l := range allLabels {
		widenContext(l, maxW)
	}
	return c, nil
}

func (e *elaborator) procAssign(x *verilog.ProcAssign) (Stmt, error) {
	lhs, err := e.lvalue(x.LHS)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, lv := range lhs {
		if !lv.Var.IsReg {
			return nil, e.errf(x.AssignPos, "procedural assignment to wire %s (use assign)", lv.Var.Name)
		}
		total += lv.TargetWidth()
	}
	rhs, err := e.expr(x.RHS)
	if err != nil {
		return nil, err
	}
	widenContext(rhs, total)
	return &Assign{Blocking: x.Blocking, LHS: lhs, RHS: rhs}, nil
}

func (e *elaborator) unrollFor(x *verilog.For) (Stmt, error) {
	ident, ok := x.Init.LHS.(*verilog.Ident)
	if !ok {
		return nil, e.errf(x.ForPos, "for-loop variable must be a simple identifier")
	}
	name := ident.Name
	lv := e.flat.VarNamed(name)
	if lv == nil {
		return nil, e.errf(x.ForPos, "for-loop variable %s is not declared", name)
	}
	if _, active := e.loopVars[name]; active {
		return nil, e.errf(x.ForPos, "nested reuse of loop variable %s", name)
	}
	v, err := e.constExpr(x.Init.RHS)
	if err != nil {
		return nil, e.errf(x.ForPos, "for-loop bounds must be constant: %v", err)
	}
	v = v.Resize(lv.Width)
	b := &Block{}
	for iter := 0; ; iter++ {
		if iter > maxUnroll {
			return nil, e.errf(x.ForPos, "for loop exceeds %d iterations", maxUnroll)
		}
		e.loopVars[name] = v
		cond, err := e.constExpr(x.Cond)
		if err != nil {
			delete(e.loopVars, name)
			return nil, e.errf(x.ForPos, "for-loop condition must be constant: %v", err)
		}
		if !cond.Bool() {
			break
		}
		body, err := e.stmt(x.Body)
		if err != nil {
			delete(e.loopVars, name)
			return nil, err
		}
		if body != nil {
			b.Stmts = append(b.Stmts, body)
		}
		next, err := e.constExpr(x.Post.RHS)
		if err != nil {
			delete(e.loopVars, name)
			return nil, e.errf(x.ForPos, "for-loop step must be constant: %v", err)
		}
		if postIdent, ok := x.Post.LHS.(*verilog.Ident); !ok || postIdent.Name != name {
			delete(e.loopVars, name)
			return nil, e.errf(x.ForPos, "for-loop step must assign to %s", name)
		}
		v = next.Resize(lv.Width)
	}
	delete(e.loopVars, name)
	if len(b.Stmts) == 0 {
		return nil, nil
	}
	return b, nil
}

func (e *elaborator) sysTask(x *verilog.SysTask) (Stmt, error) {
	st := &SysTask{}
	switch x.Name {
	case "$display":
		st.Kind = TaskDisplay
	case "$write":
		st.Kind = TaskWrite
	case "$monitor":
		st.Kind = TaskMonitor
	case "$finish":
		st.Kind = TaskFinish
		if len(x.Args) > 1 {
			return nil, e.errf(x.TaskPos, "$finish takes at most one argument")
		}
		return st, nil
	default:
		return nil, e.errf(x.TaskPos, "unsupported system task %s", x.Name)
	}
	args := x.Args
	if len(args) > 0 {
		if s, ok := args[0].(*verilog.StringLit); ok {
			st.Format = s.Value
			args = args[1:]
		}
	}
	for _, a := range args {
		r, err := e.expr(a)
		if err != nil {
			return nil, err
		}
		st.Args = append(st.Args, r)
	}
	return st, nil
}

// lvalue resolves an assignment target, expanding concatenations.
func (e *elaborator) lvalue(x verilog.Expr) ([]LValue, error) {
	switch t := x.(type) {
	case *verilog.Concat:
		var out []LValue
		for _, p := range t.Parts {
			sub, err := e.lvalue(p)
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
		}
		return out, nil
	case *verilog.Ident:
		v := e.flat.VarNamed(t.Name)
		if v == nil {
			return nil, e.errf(t.IdentPos, "assignment to undeclared variable %s", t.Name)
		}
		if v.IsArray() {
			return nil, e.errf(t.IdentPos, "memory %s must be assigned one word at a time", t.Name)
		}
		return []LValue{{Var: v}}, nil
	case *verilog.Index:
		base, ok := t.X.(*verilog.Ident)
		if !ok {
			return nil, e.errf(t.LPos, "assignment target must be a simple variable select")
		}
		v := e.flat.VarNamed(base.Name)
		if v == nil {
			return nil, e.errf(t.LPos, "assignment to undeclared variable %s", base.Name)
		}
		idx, err := e.expr(t.Idx)
		if err != nil {
			return nil, err
		}
		if v.IsArray() {
			return []LValue{{Var: v, ArrIndex: e.adjustArrayIndex(v, idx)}}, nil
		}
		if c, ok := idx.(*Const); ok {
			bit := int(c.V.Uint64())
			return []LValue{{Var: v, HasRange: true, Hi: bit, Lo: bit}}, nil
		}
		return []LValue{{Var: v, DynBit: idx}}, nil
	case *verilog.RangeSel:
		base, ok := t.X.(*verilog.Ident)
		if !ok {
			return nil, e.errf(t.LPos, "assignment target must be a simple variable select")
		}
		v := e.flat.VarNamed(base.Name)
		if v == nil {
			return nil, e.errf(t.LPos, "assignment to undeclared variable %s", base.Name)
		}
		if v.IsArray() {
			return nil, e.errf(t.LPos, "part select on memory %s is not supported", v.Name)
		}
		hi, err := e.constExpr(t.Hi)
		if err != nil {
			return nil, err
		}
		lo, err := e.constExpr(t.Lo)
		if err != nil {
			return nil, err
		}
		h, l := int(hi.Uint64()), int(lo.Uint64())
		if h < l || h >= v.Width {
			return nil, e.errf(t.LPos, "part select [%d:%d] out of range for %s[%d:0]", h, l, v.Name, v.Width-1)
		}
		return []LValue{{Var: v, HasRange: true, Hi: h, Lo: l}}, nil
	case *verilog.HierIdent:
		return nil, e.errf(t.IdentPos, "internal: hierarchical target %v survived IR promotion", t.Parts)
	}
	return nil, e.errf(x.Pos(), "invalid assignment target %T", x)
}

// adjustArrayIndex rebases an index expression by the array's low bound.
func (e *elaborator) adjustArrayIndex(v *Var, idx Expr) Expr {
	if v.ArrayLo == 0 {
		return idx
	}
	w := idx.Width()
	if need := bits.MinWidthFor(uint64(v.ArrayLo + v.ArrayLen)); need > w {
		w = need
	}
	return &Binary{Op: verilog.BSub, X: idx, Y: &Const{V: bits.FromUint64(w, uint64(v.ArrayLo))}, W: w}
}
