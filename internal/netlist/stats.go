package netlist

import "math"

// Stats summarizes the synthesized netlist in FPGA resource terms. The
// blackbox toolchain model (internal/toolchain) uses these numbers to
// derive compile latency, device fit, and timing closure — the three
// observable behaviours of a vendor compiler that Cascade's JIT design
// responds to.
type Stats struct {
	Cells     int // LUT-equivalent combinational cells
	FFs       int // flip-flops (register bits)
	MemBits   int // block-RAM bits
	CritPath  int // levels of logic on the critical path
	CodeOps   int // netlist instructions (compiled code size)
	SeqProcs  int
	CombUnits int
}

// LogicElements returns the device-fit metric: LUT cells plus register
// bits (one LE holds a LUT and an FF on Cyclone-class parts).
func (s Stats) LogicElements() int {
	if s.Cells > s.FFs {
		return s.Cells
	}
	return s.FFs
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// cellCost estimates LUT cells for one instruction.
func cellCost(op *Op, slots []SlotInfo) int {
	w := op.Width
	if w < 1 {
		w = 1
	}
	switch op.Kind {
	case OpConst, OpMove, OpSlice, OpConcat, OpRepl, OpHalt, OpJump, OpTime:
		return 0 // wiring only
	case OpAdd, OpSub, OpNeg:
		return w
	case OpMul:
		return w * w / 4
	case OpDiv, OpMod, OpPow:
		return w * w
	case OpAnd, OpOr, OpXor, OpXnor, OpNot:
		return w
	case OpLogNot, OpRedAnd, OpRedOr, OpRedXor, OpRedNand, OpRedNor, OpRedXnor:
		if len(op.Srcs) > 0 {
			return slots[op.Srcs[0]].Width / 2
		}
		return w / 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		if len(op.Srcs) > 0 {
			return slots[op.Srcs[0]].Width
		}
		return w
	case OpLogAnd, OpLogOr:
		return 1
	case OpShl, OpShr:
		return w * log2ceil(w) / 2
	case OpBitSel:
		if len(op.Srcs) > 0 {
			return log2ceil(slots[op.Srcs[0]].Width) * 2
		}
		return 2
	case OpMux:
		return w
	case OpMemRead:
		return log2ceil(w) // address decode; storage counted as MemBits
	case OpJz:
		return 1 // condition into control FSM
	case OpWrite, OpWriteNB:
		return 0 // register input wiring
	case OpWriteRng, OpWriteRngNB, OpWriteBit, OpWriteBitNB:
		return w // write-enable masking
	case OpMemWrite, OpMemWriteNB:
		return log2ceil(w) + 2
	case OpDisplay:
		// Argument capture registers plus task-mask logic (Figure 10).
		total := 2
		for _, s := range op.Srcs {
			total += slots[s].Width
		}
		return total
	case OpFinish:
		return 1
	}
	return 1
}

// delayCost estimates levels of logic contributed by one instruction.
func delayCost(op *Op) int {
	w := op.Width
	if w < 1 {
		w = 1
	}
	switch op.Kind {
	case OpConst, OpMove, OpSlice, OpConcat, OpRepl, OpHalt, OpJump, OpTime,
		OpWrite, OpWriteNB, OpDisplay, OpFinish:
		return 0
	case OpAdd, OpSub, OpNeg, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return log2ceil(w) + 1
	case OpMul:
		return 2 * log2ceil(w)
	case OpDiv, OpMod, OpPow:
		return w
	case OpAnd, OpOr, OpXor, OpXnor, OpNot, OpLogAnd, OpLogOr, OpLogNot, OpMux, OpJz:
		return 1
	case OpRedAnd, OpRedOr, OpRedXor, OpRedNand, OpRedNor, OpRedXnor:
		return log2ceil(w) + 1
	case OpShl, OpShr, OpBitSel:
		return log2ceil(w) + 1
	case OpMemRead, OpMemWrite, OpMemWriteNB:
		return 2
	case OpWriteRng, OpWriteRngNB, OpWriteBit, OpWriteBitNB:
		return 1
	}
	return 1
}

// computeStats derives resource and timing estimates for a compiled
// program. Critical path is approximated per slot: depth(dst) =
// max(depth(srcs)) + delay(op), taken over the whole schedule.
func computeStats(p *Program) Stats {
	st := Stats{
		CodeOps:   len(p.Code),
		SeqProcs:  len(p.Seq),
		CombUnits: len(p.Comb),
	}
	for _, v := range p.Flat.Vars {
		if v.IsArray() {
			st.MemBits += v.Width * v.ArrayLen
			continue
		}
		if v.IsReg {
			st.FFs += v.Width
		}
	}
	depth := make([]int, len(p.Slots))
	maxDepth := 0
	for i := range p.Code {
		op := &p.Code[i]
		st.Cells += cellCost(op, p.Slots)
		d := 0
		for _, s := range op.Srcs {
			if s >= 0 && s < len(depth) && depth[s] > d {
				d = depth[s]
			}
		}
		d += delayCost(op)
		if d > maxDepth {
			maxDepth = d
		}
		if op.Dst < 0 || op.Dst >= len(depth) {
			continue
		}
		// A flip-flop output starts a fresh timing path: non-blocking
		// writes latch into registers, so depth does not propagate
		// through them. Blocking writes (combinational always blocks and
		// sequential temporaries) conservatively propagate.
		switch op.Kind {
		case OpWriteNB, OpWriteRngNB, OpWriteBitNB:
			continue
		}
		if d > depth[op.Dst] {
			depth[op.Dst] = d
		}
	}
	st.CritPath = maxDepth
	return st
}
