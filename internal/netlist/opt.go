package netlist

// Optimize removes dead instructions from a compiled program: pure ops
// whose destination slot is never read by any live instruction and does
// not back a named variable. Together with the elaborator's constant
// folding this is the synthesis cleanup a vendor flow performs before
// placement; the area statistics (and therefore the toolchain's fit and
// latency models) see the optimized netlist.
//
// The pass is a fixpoint over (live slots, live ops): side-effecting
// instructions (writes, memory ops, tasks, control flow) are always live;
// an instruction becomes live when its destination is; a slot becomes
// live when a live instruction reads it or a named variable backs it.
// Dead instructions are then dropped and jump targets and unit entry
// points are remapped.
func Optimize(p *Program) *Program {
	n := len(p.Code)
	liveOp := make([]bool, n)
	liveSlot := make([]bool, len(p.Slots))
	for i, s := range p.Slots {
		if s.Var != nil {
			liveSlot[i] = true
		}
	}
	sideEffect := func(op *Op) bool {
		switch op.Kind {
		case OpWrite, OpWriteRng, OpWriteBit, OpMemWrite,
			OpWriteNB, OpWriteRngNB, OpWriteBitNB, OpMemWriteNB,
			OpDisplay, OpFinish, OpJump, OpJz, OpHalt:
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			op := &p.Code[i]
			if liveOp[i] {
				continue
			}
			if sideEffect(op) || (op.Dst >= 0 && op.Dst < len(liveSlot) && liveSlot[op.Dst]) {
				liveOp[i] = true
				changed = true
				for _, s := range op.Srcs {
					if s >= 0 && s < len(liveSlot) && !liveSlot[s] {
						liveSlot[s] = true
					}
				}
			}
		}
	}

	// Rebuild the code array; pcMap[i] is the new index of the first
	// kept instruction at or after i (entry points and jump targets land
	// on the next live instruction).
	pcMap := make([]int, n+1)
	var code []Op
	kept := 0
	for i := 0; i < n; i++ {
		if liveOp[i] {
			pcMap[i] = kept
			code = append(code, p.Code[i])
			kept++
		} else {
			pcMap[i] = kept // next kept instruction
		}
	}
	pcMap[n] = kept
	for i := range code {
		switch code[i].Kind {
		case OpJump, OpJz:
			code[i].Target = pcMap[code[i].Target]
		}
	}

	out := &Program{
		Flat:       p.Flat,
		Code:       code,
		Slots:      p.Slots,
		VarSlot:    p.VarSlot,
		Mems:       p.Mems,
		MemOf:      p.MemOf,
		Tasks:      p.Tasks,
		ResetState: p.ResetState,
		ResetMems:  p.ResetMems,
	}
	for _, u := range p.Comb {
		out.Comb = append(out.Comb, CombUnit{Entry: pcMap[u.Entry]})
	}
	for _, sp := range p.Seq {
		out.Seq = append(out.Seq, SeqProc{Edges: sp.Edges, Entry: pcMap[sp.Entry]})
	}
	for _, m := range p.Monitors {
		out.Monitors = append(out.Monitors, MonitorUnit{Entry: pcMap[m.Entry]})
	}
	out.Stats = computeStats(out)
	return out
}
