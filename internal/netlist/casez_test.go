package netlist

import (
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/verilog"
)

// casezDecoder is a priority decoder using wildcard labels — the classic
// casez idiom.
const casezDecoder = `
module M(input wire clk, input wire [7:0] req, output reg [2:0] grant);
  always @(*)
    casez (req)
      8'b1???????: grant = 3'd7;
      8'b01??????: grant = 3'd6;
      8'b001?????: grant = 3'd5;
      8'b0001????: grant = 3'd4;
      8'b00001???: grant = 3'd3;
      8'b000001??: grant = 3'd2;
      8'b0000001?: grant = 3'd1;
      default:     grant = 3'd0;
    endcase
endmodule`

func TestCasezWildcardPriorityDecoder(t *testing.T) {
	d := newDual(t, casezDecoder)
	ref := func(req uint64) uint64 {
		for b := 7; b >= 1; b-- {
			if req>>uint(b)&1 == 1 {
				return uint64(b)
			}
		}
		return 0
	}
	for req := uint64(0); req < 256; req++ {
		d.setInput("req", bits.FromUint64(8, req))
		d.settle()
		d.check(t, "casez")
		got := d.s.GetState().Scalars["grant"].Uint64()
		if got != ref(req) {
			t.Fatalf("req=%08b: grant=%d, want %d", req, got, ref(req))
		}
	}
}

// tryCompile parses, elaborates, and synthesizes, returning any error.
func tryCompile(src string) (*Program, string, error) {
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		return nil, "parse", errs[0]
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		return nil, "elab", err
	}
	p, err := Compile(f)
	return p, "compile", err
}

func TestCasezWildcardRequiresCasez(t *testing.T) {
	src := `
module M(input wire clk, input wire [3:0] s, output reg q);
  always @(*)
    case (s)
      4'b1??0: q = 1;
      default: q = 0;
    endcase
endmodule`
	if _, _, err := tryCompile(src); err == nil {
		t.Fatal("wildcard label in plain case should be rejected")
	}
}
