package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/verilog"
)

func rawAndOpt(t *testing.T, src string) (*Program, *Program) {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompileRaw(f)
	if err != nil {
		t.Fatal(err)
	}
	return raw, Optimize(raw)
}

func TestOptimizeRemovesDeadCompute(t *testing.T) {
	// `unused` is a wire feeding nothing beyond itself; the expensive
	// multiply feeding only a dead temp must vanish... the wire itself
	// is a named variable so its own write stays, but the case-select
	// temp chain below is removable.
	raw, opt := rawAndOpt(t, `
module M(input wire clk, input wire [7:0] a, output reg [7:0] q);
  always @(posedge clk) begin
    q <= a + 1;
  end
endmodule`)
	if len(opt.Code) > len(raw.Code) {
		t.Fatalf("optimizer grew code: %d -> %d", len(raw.Code), len(opt.Code))
	}
}

func TestOptimizePreservesBehaviourOnRandomPrograms(t *testing.T) {
	g := &progGen{r: rand.New(rand.NewSource(1234))}
	for trial := 0; trial < 25; trial++ {
		src := g.generate()
		st, errs := verilog.ParseSourceText(src)
		if errs != nil {
			t.Fatal(errs)
		}
		f, err := elab.Elaborate(st.Modules[0], "dut", nil)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := CompileRaw(f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := Optimize(raw)
		if len(opt.Code) > len(raw.Code) {
			t.Fatal("optimizer grew code")
		}
		mr, mo := NewMachine(raw), NewMachine(opt)
		clk := f.VarNamed("clk")
		av, bv := f.VarNamed("a"), f.VarNamed("b")
		settle := func(m *Machine) {
			for m.HasActive() || m.HasUpdates() {
				m.Evaluate()
				if m.HasUpdates() {
					m.Update()
				}
			}
		}
		settle(mr)
		settle(mo)
		for i := 0; i < 10; i++ {
			x, y := g.r.Uint64(), g.r.Uint64()
			for _, m := range []*Machine{mr, mo} {
				m.SetInput(av, bits.FromUint64(8, x))
				m.SetInput(bv, bits.FromUint64(8, y))
				settle(m)
				m.SetInput(clk, bits.FromUint64(1, 1))
				settle(m)
				if m.HasUpdates() {
					m.Update()
				}
				settle(m)
				m.SetInput(clk, bits.FromUint64(1, 0))
				settle(m)
			}
			if mr.GetState().Signature() != mo.GetState().Signature() {
				t.Fatalf("trial %d tick %d: optimizer changed behaviour on\n%s", trial, i, src)
			}
		}
	}
}

func TestOptimizeKeepsTasksAndControlFlow(t *testing.T) {
	src := `
module M(input wire clk, input wire [1:0] s);
  reg [7:0] q = 0;
  always @(posedge clk)
    case (s)
      2'd0: q <= q + 1;
      2'd1: begin q <= q + 2; $display("two %d", q); end
      default: $finish;
    endcase
endmodule`
	st, _ := verilog.ParseSourceText(src)
	f, _ := elab.Elaborate(st.Modules[0], "dut", nil)
	prog, err := Compile(f) // optimized path
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(prog)
	clk, sv := f.VarNamed("clk"), f.VarNamed("s")
	settle := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	tick := func(s uint64) {
		m.SetInput(sv, bits.FromUint64(2, s))
		settle()
		m.SetInput(clk, bits.FromUint64(1, 1))
		settle()
		m.SetInput(clk, bits.FromUint64(1, 0))
		settle()
	}
	tick(0)
	tick(1)
	evs := m.DrainEvents()
	if len(evs) != 1 || evs[0].Text != "two 1" {
		t.Fatalf("display lost through optimizer: %v", evs)
	}
	tick(3)
	if !m.Finished() {
		t.Fatal("finish lost through optimizer")
	}
}

func TestElabPrunesUnreachableBranches(t *testing.T) {
	// The statically false branch is pruned during elaboration, so the
	// dead triple multiply costs no cells in either compile path.
	_, withDead := rawAndOpt(t, `
module M(input wire clk, input wire [31:0] x, output reg [31:0] q);
  always @(posedge clk)
    if (1'b0)
      q <= x * x * x;  // statically unreachable
    else
      q <= x + 1;
endmodule`)
	_, clean := rawAndOpt(t, `
module M(input wire clk, input wire [31:0] x, output reg [31:0] q);
  always @(posedge clk)
    q <= x + 1;
endmodule`)
	if withDead.Stats.Cells != clean.Stats.Cells {
		t.Fatalf("dead branch not pruned: %d cells vs %d clean", withDead.Stats.Cells, clean.Stats.Cells)
	}
}

func TestOptimizeRemovesSyntheticDeadChain(t *testing.T) {
	// DCE proper: append a pure compute chain ending in an unread temp
	// slot; Optimize must drop the whole chain and renumber jumps.
	raw, _ := rawAndOpt(t, `
module M(input wire clk, input wire [7:0] a, output reg [7:0] q);
  always @(posedge clk)
    if (a > 3)
      q <= a + 1;
    else
      q <= a - 1;
endmodule`)
	// Splice dead ops in front of the first unit (entries shift by 3).
	t1 := len(raw.Slots)
	raw.Slots = append(raw.Slots, SlotInfo{Width: 8}, SlotInfo{Width: 8}, SlotInfo{Width: 8})
	dead := []Op{
		{Kind: OpConst, Dst: t1, Width: 8, Const: mustVec(8, 7)},
		{Kind: OpMul, Dst: t1 + 1, Srcs: []int{t1, t1}, Width: 8},
		{Kind: OpAdd, Dst: t1 + 2, Srcs: []int{t1 + 1, t1}, Width: 8},
	}
	shifted := append(dead, raw.Code...)
	for i := len(dead); i < len(shifted); i++ {
		switch shifted[i].Kind {
		case OpJump, OpJz:
			shifted[i].Target += len(dead)
		}
	}
	raw.Code = shifted
	for i := range raw.Comb {
		raw.Comb[i].Entry += len(dead)
	}
	for i := range raw.Seq {
		raw.Seq[i].Entry += len(dead)
	}
	before := len(raw.Code)
	opt := Optimize(raw)
	if len(opt.Code) != before-len(dead) {
		t.Fatalf("dead chain not removed: %d -> %d ops", before, len(opt.Code))
	}
	// The machine still runs correctly after renumbering.
	f := raw.Flat
	m := NewMachine(opt)
	clk, av := f.VarNamed("clk"), f.VarNamed("a")
	settle := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	settle()
	m.SetInput(av, bits.FromUint64(8, 9))
	settle()
	m.SetInput(clk, bits.FromUint64(1, 1))
	settle()
	if got := m.ReadVar(f.VarNamed("q")).Uint64(); got != 10 {
		t.Fatalf("q=%d after optimize, want 10", got)
	}
}

func mustVec(w int, v uint64) *bits.Vector { return bits.FromUint64(w, v) }

var _ = fmt.Sprintf
