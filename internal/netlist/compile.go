package netlist

import (
	"sort"

	"cascade/internal/elab"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// Compile synthesizes f into a netlist program and runs the dead-code
// cleanup pass (see Optimize). It fails on designs that cannot be lowered
// to synchronous hardware: combinational cycles, or variables driven by
// both combinational and sequential logic. Incomplete sensitivity lists
// are accepted and treated as complete, matching what commercial
// synthesis tools do.
func Compile(f *elab.Flat) (*Program, error) {
	p, err := CompileRaw(f)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// CompileRaw synthesizes without the cleanup pass (the optimizer ablation
// and the optimizer's own tests).
func CompileRaw(f *elab.Flat) (*Program, error) {
	c := &compiler{
		prog: &Program{
			Flat:    f,
			VarSlot: make([]int, len(f.Vars)),
			MemOf:   make([]int, len(f.Vars)),
		},
	}
	if err := c.run(); err != nil {
		return nil, err
	}
	return c.prog, nil
}

type compiler struct {
	prog *Program
}

func (c *compiler) run() error {
	f := c.prog.Flat
	// Slot 0..n-1: one slot per scalar variable, then temporaries.
	for _, v := range f.Vars {
		if v.IsArray() {
			c.prog.VarSlot[v.Index] = -1
			c.prog.MemOf[v.Index] = len(c.prog.Mems)
			c.prog.Mems = append(c.prog.Mems, MemInfo{
				Var: v, Words: v.ArrayLen, Width: v.Width, Wide: v.Width > 64,
			})
			continue
		}
		c.prog.MemOf[v.Index] = -1
		c.prog.VarSlot[v.Index] = c.newSlot(v.Width, v)
	}

	// Partition processes.
	type combSrc struct {
		assign *elab.ContAssign
		proc   *elab.Proc
		order  int
	}
	var combs []combSrc
	for i, a := range f.Assigns {
		combs = append(combs, combSrc{assign: a, order: i})
	}
	var seqs []*elab.Proc
	for i, p := range f.Procs {
		if p.Star || hasLevelEdge(p) {
			if hasTrueEdge(p) {
				return errf("process mixes edge and level sensitivity (not synthesizable)")
			}
			combs = append(combs, combSrc{proc: p, order: len(f.Assigns) + i})
			continue
		}
		if len(p.Edges) == 0 {
			return errf("always block with empty sensitivity list")
		}
		seqs = append(seqs, p)
	}

	// Driver-class check: no variable may be written by both a
	// combinational unit and a sequential process.
	combWrites := map[*elab.Var]int{} // var -> comb unit index
	for ci, cs := range combs {
		for _, v := range writeSetOf(cs) {
			if prev, dup := combWrites[v]; dup && prev != ci {
				return errf("%s is driven by multiple combinational units", v.Name)
			}
			combWrites[v] = ci
		}
	}
	seqWrites := map[*elab.Var]bool{}
	for _, p := range seqs {
		for _, v := range writeSetStmt(p.Body) {
			seqWrites[v] = true
			if _, both := combWrites[v]; both {
				return errf("%s is driven by both combinational and sequential logic", v.Name)
			}
		}
	}

	// Topologically order combinational units; a cycle is a synthesis
	// error (combinational loop).
	n := len(combs)
	readsOf := func(cs combSrc) []*elab.Var {
		if cs.assign != nil {
			return assignReadVars(cs.assign)
		}
		return readSetStmt(cs.proc.Body)
	}
	adj := make([][]int, n) // edge u -> v: v reads something u writes
	indeg := make([]int, n)
	writerOf := map[*elab.Var]int{}
	for ci, cs := range combs {
		for _, v := range writeSetOf(cs) {
			writerOf[v] = ci
		}
	}
	for vi, cs := range combs {
		seen := map[int]bool{}
		for _, v := range readsOf(cs) {
			if ui, ok := writerOf[v]; ok && ui != vi && !seen[ui] {
				seen[ui] = true
				adj[ui] = append(adj[ui], vi)
				indeg[vi]++
			}
		}
	}
	var order []int
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		next := []int{}
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				next = append(next, v)
			}
		}
		sort.Ints(next)
		ready = append(ready, next...)
	}
	if len(order) != n {
		return errf("combinational loop detected (not synthesizable)")
	}

	// Compile combinational units in topological order.
	for _, ci := range order {
		cs := combs[ci]
		entry := len(c.prog.Code)
		if cs.assign != nil {
			c.compileContAssign(cs.assign)
		} else {
			c.compileStmt(cs.proc.Body)
		}
		c.emit(Op{Kind: OpHalt})
		c.prog.Comb = append(c.prog.Comb, CombUnit{Entry: entry})
	}

	// Compile sequential processes.
	for _, p := range seqs {
		entry := len(c.prog.Code)
		c.compileStmt(p.Body)
		c.emit(Op{Kind: OpHalt})
		c.prog.Seq = append(c.prog.Seq, SeqProc{Edges: p.Edges, Entry: entry})
	}

	// $monitor registrations from initial blocks become end-of-step
	// display units evaluated by Machine.EndStep.
	for _, st := range f.Initials {
		elab.WalkStmt(st, func(s elab.Stmt) {
			if t, ok := s.(*elab.SysTask); ok && t.Kind == elab.TaskMonitor {
				entry := len(c.prog.Code)
				srcs := make([]int, len(t.Args))
				for i, a := range t.Args {
					srcs[i] = c.compileExpr(a)
				}
				c.emit(Op{Kind: OpDisplay, Srcs: srcs, Aux: len(c.prog.Tasks)})
				c.emit(Op{Kind: OpHalt})
				c.prog.Tasks = append(c.prog.Tasks, Task{Src: t, Monitor: true})
				c.prog.Monitors = append(c.prog.Monitors, MonitorUnit{Entry: entry})
			}
		}, nil)
	}

	// Reset state: run a reference simulator once (executes initial
	// blocks) and capture the resulting variable values — the FPGA
	// bitstream's initial register contents.
	ref := sim.New(f, sim.Options{})
	ref.Evaluate()
	st := ref.GetState()
	c.prog.ResetState = st.Scalars
	c.prog.ResetMems = st.Arrays

	c.prog.Stats = computeStats(c.prog)
	return nil
}

func hasLevelEdge(p *elab.Proc) bool {
	for _, e := range p.Edges {
		if e.Kind == elab.Level {
			return true
		}
	}
	return false
}

func hasTrueEdge(p *elab.Proc) bool {
	for _, e := range p.Edges {
		if e.Kind != elab.Level {
			return true
		}
	}
	return false
}

func writeSetOf(cs struct {
	assign *elab.ContAssign
	proc   *elab.Proc
	order  int
}) []*elab.Var {
	if cs.assign != nil {
		var out []*elab.Var
		for _, lv := range cs.assign.LHS {
			out = append(out, lv.Var)
		}
		return out
	}
	return writeSetStmt(cs.proc.Body)
}

func writeSetStmt(s elab.Stmt) []*elab.Var {
	seen := map[*elab.Var]bool{}
	var out []*elab.Var
	elab.WalkStmt(s, func(st elab.Stmt) {
		if a, ok := st.(*elab.Assign); ok {
			for _, lv := range a.LHS {
				if !seen[lv.Var] {
					seen[lv.Var] = true
					out = append(out, lv.Var)
				}
			}
		}
	}, nil)
	return out
}

func readSetStmt(s elab.Stmt) []*elab.Var {
	seen := map[*elab.Var]bool{}
	var out []*elab.Var
	elab.WalkStmt(s, nil, func(x elab.Expr) {
		var v *elab.Var
		switch t := x.(type) {
		case *elab.VarRef:
			v = t.V
		case *elab.ArrayRef:
			v = t.V
		}
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

func assignReadVars(a *elab.ContAssign) []*elab.Var {
	seen := map[*elab.Var]bool{}
	var out []*elab.Var
	collect := func(e elab.Expr) {
		elab.WalkExpr(e, func(x elab.Expr) {
			var v *elab.Var
			switch t := x.(type) {
			case *elab.VarRef:
				v = t.V
			case *elab.ArrayRef:
				v = t.V
			}
			if v != nil && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		})
	}
	collect(a.RHS)
	for _, lv := range a.LHS {
		if lv.ArrIndex != nil {
			collect(lv.ArrIndex)
		}
		if lv.DynBit != nil {
			collect(lv.DynBit)
		}
	}
	return out
}

func (c *compiler) newSlot(width int, v *elab.Var) int {
	idx := len(c.prog.Slots)
	c.prog.Slots = append(c.prog.Slots, SlotInfo{Width: width, Wide: width > 64, Var: v})
	return idx
}

func (c *compiler) emit(op Op) int {
	// An op runs on the wide path if its result or any source is wide.
	if op.Width > 64 {
		op.Wide = true
	}
	if op.Dst >= 0 && op.Dst < len(c.prog.Slots) && c.prog.Slots[op.Dst].Wide {
		op.Wide = true
	}
	for _, s := range op.Srcs {
		if s >= 0 && s < len(c.prog.Slots) && c.prog.Slots[s].Wide {
			op.Wide = true
		}
	}
	c.prog.Code = append(c.prog.Code, op)
	return len(c.prog.Code) - 1
}

func (c *compiler) compileContAssign(a *elab.ContAssign) {
	rhs := c.compileExpr(a.RHS)
	c.distribute(a.LHS, rhs, a.RHS.Width(), true)
}

// distribute writes an rhs slot across (possibly concatenated) lvalues.
func (c *compiler) distribute(lhs []elab.LValue, rhs int, rhsWidth int, blocking bool) {
	total := 0
	for _, lv := range lhs {
		total += lv.TargetWidth()
	}
	src := rhs
	if rhsWidth != total {
		src = c.newSlot(total, nil)
		c.emit(Op{Kind: OpMove, Dst: src, Srcs: []int{rhs}, Width: total})
	}
	offset := total
	for _, lv := range lhs {
		w := lv.TargetWidth()
		offset -= w
		part := src
		if len(lhs) > 1 {
			part = c.newSlot(w, nil)
			c.emit(Op{Kind: OpSlice, Dst: part, Srcs: []int{src}, Width: w, Hi: offset + w - 1, Lo: offset})
		}
		c.writeLValue(lv, part, blocking)
	}
}

func (c *compiler) writeLValue(lv elab.LValue, src int, blocking bool) {
	if lv.ArrIndex != nil {
		addr := c.compileExpr(lv.ArrIndex)
		kind := OpMemWrite
		if !blocking {
			kind = OpMemWriteNB
		}
		c.emit(Op{Kind: kind, Srcs: []int{src, addr}, Aux: c.prog.MemOf[lv.Var.Index], Width: lv.Var.Width})
		return
	}
	dst := c.prog.VarSlot[lv.Var.Index]
	switch {
	case lv.DynBit != nil:
		idx := c.compileExpr(lv.DynBit)
		kind := OpWriteBit
		if !blocking {
			kind = OpWriteBitNB
		}
		c.emit(Op{Kind: kind, Dst: dst, Srcs: []int{src, idx}, Width: 1})
	case lv.HasRange:
		kind := OpWriteRng
		if !blocking {
			kind = OpWriteRngNB
		}
		c.emit(Op{Kind: kind, Dst: dst, Srcs: []int{src}, Hi: lv.Hi, Lo: lv.Lo, Width: lv.Hi - lv.Lo + 1})
	default:
		kind := OpWrite
		if !blocking {
			kind = OpWriteNB
		}
		c.emit(Op{Kind: kind, Dst: dst, Srcs: []int{src}, Width: lv.Var.Width})
	}
}

func (c *compiler) compileStmt(s elab.Stmt) {
	switch x := s.(type) {
	case nil:
	case *elab.Block:
		for _, st := range x.Stmts {
			c.compileStmt(st)
		}
	case *elab.If:
		cond := c.compileExpr(x.Cond)
		jz := c.emit(Op{Kind: OpJz, Srcs: []int{cond}})
		c.compileStmt(x.Then)
		if x.Else != nil {
			jmp := c.emit(Op{Kind: OpJump})
			c.prog.Code[jz].Target = len(c.prog.Code)
			c.compileStmt(x.Else)
			c.prog.Code[jmp].Target = len(c.prog.Code)
		} else {
			c.prog.Code[jz].Target = len(c.prog.Code)
		}
	case *elab.Case:
		c.compileCase(x)
	case *elab.Assign:
		rhs := c.compileExpr(x.RHS)
		c.distribute(x.LHS, rhs, x.RHS.Width(), x.Blocking)
	case *elab.SysTask:
		c.compileTask(x)
	default:
		panic(errf("unknown statement %T", s))
	}
}

func (c *compiler) compileCase(x *elab.Case) {
	subj := c.compileExpr(x.Subject)
	type arm struct {
		item *elab.CaseItem
		jsrc []int // Jnz sites targeting this arm's body
	}
	var arms []arm
	var defaultItem *elab.CaseItem
	for _, item := range x.Items {
		if item.Labels == nil {
			defaultItem = item
			continue
		}
		a := arm{item: item}
		for li, l := range item.Labels {
			ls := c.compileExpr(l)
			if m := item.Masks[li]; m != nil {
				// casez wildcard: match when (subj ^ label) & mask == 0.
				w := x.Subject.Width()
				if l.Width() > w {
					w = l.Width()
				}
				diff := c.newSlot(w, nil)
				c.emit(Op{Kind: OpXor, Dst: diff, Srcs: []int{subj, ls}, Width: w})
				mk := c.newSlot(m.Width(), nil)
				c.emit(Op{Kind: OpConst, Dst: mk, Width: m.Width(), Const: m})
				masked := c.newSlot(w, nil)
				c.emit(Op{Kind: OpAnd, Dst: masked, Srcs: []int{diff, mk}, Width: w})
				a.jsrc = append(a.jsrc, c.emit(Op{Kind: OpJz, Srcs: []int{masked}}))
				continue
			}
			eq := c.newSlot(1, nil)
			c.emit(Op{Kind: OpEq, Dst: eq, Srcs: []int{subj, ls}, Width: 1})
			// Jump to the arm body when equal: invert and Jz.
			inv := c.newSlot(1, nil)
			c.emit(Op{Kind: OpLogNot, Dst: inv, Srcs: []int{eq}, Width: 1})
			a.jsrc = append(a.jsrc, c.emit(Op{Kind: OpJz, Srcs: []int{inv}}))
		}
		arms = append(arms, a)
	}
	jmpDefault := c.emit(Op{Kind: OpJump})
	var ends []int
	for _, a := range arms {
		body := len(c.prog.Code)
		for _, site := range a.jsrc {
			c.prog.Code[site].Target = body
		}
		c.compileStmt(a.item.Body)
		ends = append(ends, c.emit(Op{Kind: OpJump}))
	}
	c.prog.Code[jmpDefault].Target = len(c.prog.Code)
	if defaultItem != nil {
		c.compileStmt(defaultItem.Body)
	}
	end := len(c.prog.Code)
	for _, site := range ends {
		c.prog.Code[site].Target = end
	}
}

func (c *compiler) compileTask(t *elab.SysTask) {
	switch t.Kind {
	case elab.TaskFinish:
		c.emit(Op{Kind: OpFinish})
	case elab.TaskDisplay, elab.TaskWrite, elab.TaskMonitor:
		srcs := make([]int, len(t.Args))
		for i, a := range t.Args {
			srcs[i] = c.compileExpr(a)
		}
		c.emit(Op{Kind: OpDisplay, Srcs: srcs, Aux: len(c.prog.Tasks)})
		c.prog.Tasks = append(c.prog.Tasks, Task{Src: t})
	}
}

// compileExpr lowers an expression and returns the slot holding its value.
func (c *compiler) compileExpr(e elab.Expr) int {
	switch x := e.(type) {
	case *elab.Const:
		dst := c.newSlot(x.V.Width(), nil)
		c.emit(Op{Kind: OpConst, Dst: dst, Width: x.V.Width(), Const: x.V})
		return dst
	case *elab.VarRef:
		return c.prog.VarSlot[x.V.Index]
	case *elab.ArrayRef:
		addr := c.compileExpr(x.Index)
		dst := c.newSlot(x.V.Width, nil)
		c.emit(Op{Kind: OpMemRead, Dst: dst, Srcs: []int{addr}, Aux: c.prog.MemOf[x.V.Index], Width: x.V.Width})
		return dst
	case *elab.BitSel:
		v := c.compileExpr(x.X)
		idx := c.compileExpr(x.Idx)
		dst := c.newSlot(1, nil)
		c.emit(Op{Kind: OpBitSel, Dst: dst, Srcs: []int{v, idx}, Width: 1})
		return dst
	case *elab.Slice:
		v := c.compileExpr(x.X)
		dst := c.newSlot(x.Width(), nil)
		c.emit(Op{Kind: OpSlice, Dst: dst, Srcs: []int{v}, Width: x.Width(), Hi: x.Hi, Lo: x.Lo})
		return dst
	case *elab.Unary:
		return c.compileUnary(x)
	case *elab.Binary:
		return c.compileBinary(x)
	case *elab.Ternary:
		cond := c.compileExpr(x.Cond)
		a := c.compileExpr(x.Then)
		b := c.compileExpr(x.Else)
		dst := c.newSlot(x.W, nil)
		c.emit(Op{Kind: OpMux, Dst: dst, Srcs: []int{cond, a, b}, Width: x.W})
		return dst
	case *elab.Concat:
		srcs := make([]int, len(x.Parts))
		for i, p := range x.Parts {
			srcs[i] = c.compileExpr(p)
		}
		dst := c.newSlot(x.W, nil)
		c.emit(Op{Kind: OpConcat, Dst: dst, Srcs: srcs, Width: x.W})
		return dst
	case *elab.Repl:
		v := c.compileExpr(x.X)
		dst := c.newSlot(x.W, nil)
		c.emit(Op{Kind: OpRepl, Dst: dst, Srcs: []int{v}, Width: x.W, N: x.N})
		return dst
	case *elab.TimeRef:
		dst := c.newSlot(64, nil)
		c.emit(Op{Kind: OpTime, Dst: dst, Width: 64})
		return dst
	}
	panic(errf("unknown expression %T", e))
}

var unaryKinds = map[verilog.UnaryOp]OpKind{
	verilog.UNot: OpLogNot, verilog.UBitNot: OpNot, verilog.UNeg: OpNeg,
	verilog.URedAnd: OpRedAnd, verilog.URedOr: OpRedOr, verilog.URedXor: OpRedXor,
	verilog.URedNand: OpRedNand, verilog.URedNor: OpRedNor, verilog.URedXnor: OpRedXnor,
}

func (c *compiler) compileUnary(x *elab.Unary) int {
	v := c.compileExpr(x.X)
	if x.Op == verilog.UPlus {
		if x.W == c.prog.Slots[v].Width {
			return v
		}
		dst := c.newSlot(x.W, nil)
		c.emit(Op{Kind: OpMove, Dst: dst, Srcs: []int{v}, Width: x.W})
		return dst
	}
	dst := c.newSlot(x.W, nil)
	c.emit(Op{Kind: unaryKinds[x.Op], Dst: dst, Srcs: []int{v}, Width: x.W})
	return dst
}

var binaryKinds = map[verilog.BinaryOp]OpKind{
	verilog.BAdd: OpAdd, verilog.BSub: OpSub, verilog.BMul: OpMul,
	verilog.BDiv: OpDiv, verilog.BMod: OpMod, verilog.BPow: OpPow,
	verilog.BBitAnd: OpAnd, verilog.BBitOr: OpOr, verilog.BBitXor: OpXor, verilog.BBitXnor: OpXnor,
	verilog.BShl: OpShl, verilog.BAShl: OpShl, verilog.BShr: OpShr, verilog.BAShr: OpShr,
	verilog.BEq: OpEq, verilog.BCaseEq: OpEq, verilog.BNeq: OpNe, verilog.BCaseNeq: OpNe,
	verilog.BLt: OpLt, verilog.BLe: OpLe, verilog.BGt: OpGt, verilog.BGe: OpGe,
	verilog.BLogAnd: OpLogAnd, verilog.BLogOr: OpLogOr,
}

func (c *compiler) compileBinary(x *elab.Binary) int {
	a := c.compileExpr(x.X)
	b := c.compileExpr(x.Y)
	dst := c.newSlot(x.W, nil)
	c.emit(Op{Kind: binaryKinds[x.Op], Dst: dst, Srcs: []int{a, b}, Width: x.W})
	return dst
}
