package netlist

import (
	bv "cascade/internal/bits"
	"cascade/internal/elab"
)

// This file is the contract between the interpreter and compiled
// backends (the native-Go JIT tier in internal/njit). A backend shares
// the Machine's packed state — it reads and writes the same word lanes
// and wide vectors the interpreter uses — so the two tiers can swap
// mid-run with nothing more than a pointer exchange, and any op a
// backend chooses not to compile can fall back to the interpreter's
// slow path one instruction at a time.

// Hooks exposes direct references to a Machine's packed state. Slices
// are the live backing stores (never reallocated after NewMachine) and
// the vector pointers in Wide/MemW are stable for the life of the
// machine, so a compiled backend may capture entries in closures.
type Hooks struct {
	U64   []uint64     // narrow slot lanes
	Wide  []*bv.Vector // wide slot values (nil for narrow slots)
	Mem64 [][]uint64
	MemW  [][]*bv.Vector

	SeqTrig    []bool // per sequential process trigger flags
	CombDirty  *bool
	SeqPending *bool
}

// Hooks returns direct references to m's packed state for a compiled
// backend. The backend and the interpreter stay coherent because they
// share storage; callers must not use them from concurrent goroutines.
func (m *Machine) Hooks() Hooks {
	return Hooks{
		U64:        m.u64,
		Wide:       m.wide,
		Mem64:      m.mem64,
		MemW:       m.memW,
		SeqTrig:    m.seqTrig,
		CombDirty:  &m.combDirty,
		SeqPending: &m.seqPending,
	}
}

// ExecSlowOp executes a single instruction through the interpreter's
// universal slow path (bit-vector arithmetic, display/finish side
// effects, non-blocking write capture) and reports whether the op was a
// taken jump. It handles narrow and wide operands alike, so a compiled
// backend can use it as the fallback body for any op it does not fuse.
// It does not advance the Machine's Ops counter; backends account for
// their own work.
func (m *Machine) ExecSlowOp(op *Op) bool { return m.execWide(op) }

// EdgeHooksFor returns the indices of the sequential processes watching
// the given slot for positive and negative edges, in trigger order. A
// compiled backend inlines these lists into its write closures instead
// of consulting the edge-watch map per write.
func (m *Machine) EdgeHooksFor(slot int) (pos, neg []int) {
	for _, h := range m.edgeWatch[slot] {
		switch h.kind {
		case elab.Pos:
			pos = append(pos, h.proc)
		case elab.Neg:
			neg = append(neg, h.proc)
		}
	}
	return pos, neg
}

// PendWriteNB queues a narrow non-blocking slot write for the next
// Update batch (backend analogue of OpWriteNB).
func (m *Machine) PendWriteNB(slot int, u uint64) {
	m.pending = append(m.pending, mPending{slot: slot, u: u})
}

// PendWriteRngNB queues a narrow non-blocking range write for the next
// Update batch (backend analogue of OpWriteRngNB/OpWriteBitNB).
func (m *Machine) PendWriteRngNB(slot, hi, lo int, u uint64) {
	m.pending = append(m.pending, mPending{slot: slot, hasRng: true, hi: hi, lo: lo, u: u})
}

// PendMemWriteNB queues a narrow non-blocking memory write for the next
// Update batch (backend analogue of OpMemWriteNB).
func (m *Machine) PendMemWriteNB(mem, word int, u uint64) {
	m.pending = append(m.pending, mPending{slot: -1, mem: mem, word: word, u: u})
}
