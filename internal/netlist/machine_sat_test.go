package netlist

import (
	"math/rand"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// --- Satellite: cross-tier snapshot round-trips -----------------------

// Property: a snapshot taken from one engine installs byte-identically
// into a fresh machine and a fresh reference simulator, for random
// programs with narrow, wide, and array state. This is what makes
// tier promotion/demotion (interpreter <-> native <-> fabric) invisible.
func TestSetStateCrossTierRoundTrip(t *testing.T) {
	g := &progGen{r: rand.New(rand.NewSource(7))}
	for trial := 0; trial < 25; trial++ {
		src := g.generate()
		d := newDual(t, src)
		for i := 0; i < 6; i++ {
			d.setInput("a", bits.FromUint64(8, g.r.Uint64()))
			d.setInput("b", bits.FromUint64(8, g.r.Uint64()))
			d.settle()
			d.tick(t)
		}
		snap := d.m.GetState()
		want := snap.Signature()

		m2 := NewMachine(d.m.Prog())
		m2.SetState(snap)
		if got := m2.GetState().Signature(); got != want {
			t.Fatalf("trial %d: machine->machine round trip diverged\nwant %s\ngot  %s\nprogram:\n%s", trial, want, got, src)
		}

		s2 := sim.New(d.f, sim.Options{})
		s2.SetState(snap)
		if got := s2.GetState().Signature(); got != want {
			t.Fatalf("trial %d: machine->sim round trip diverged\nwant %s\ngot  %s\nprogram:\n%s", trial, want, got, src)
		}
	}
}

// SetState must mask junk above a snapshot vector's semantic width: a
// foreign engine tier may hand over vectors whose top storage word
// carries garbage (a violated normalization invariant), and neither
// wide nor narrow slots may absorb it.
func TestSetStateMasksDenormalizedSnapshot(t *testing.T) {
	_, m, f := compileBoth(t, `
module M(input wire clk);
  reg [39:0] narrow = 0;
  reg [99:0] wide = 0;
  reg [69:0] arr [0:3];
  always @(posedge clk) begin
    narrow <= narrow + 1;
    wide <= wide + 1;
    arr[0] <= arr[0] + 1;
  end
endmodule`)
	_ = f
	dirty := func(width int) *bits.Vector {
		v := bits.New(width)
		v.Words()[len(v.Words())-1] = ^uint64(0) // junk above the width
		return v
	}
	st := &sim.State{
		Scalars: map[string]*bits.Vector{"narrow": dirty(40), "wide": dirty(100)},
		Arrays:  map[string][]*bits.Vector{"arr": {dirty(70), dirty(70), dirty(70), dirty(70)}},
	}
	m.SetState(st)
	got := m.GetState()
	if w := got.Scalars["narrow"]; w.Uint64() != (uint64(1)<<40)-1 {
		t.Fatalf("narrow slot absorbed junk: %s", w)
	}
	for _, name := range []string{"wide"} {
		w := got.Scalars[name]
		ww := w.Words()
		if ww[1] != (uint64(1)<<36)-1 {
			t.Fatalf("%s top word not re-masked after copy: %#x", name, ww[1])
		}
	}
	a := got.Arrays["arr"][0].Words()
	if a[1] != (uint64(1)<<6)-1 {
		t.Fatalf("array word not re-masked after copy: %#x", a[1])
	}
}

// --- Satellite: no aliasing across the engine ABI boundary ------------

// Mutating a vector after handing it to SetInput/SetState must not leak
// into slot state, and mutating a vector returned by ReadVar/GetState
// must not write back into the machine.
func TestEngineABINoAliasing(t *testing.T) {
	_, m, f := compileBoth(t, `
module M(input wire [7:0] in_n, input wire [99:0] in_w);
  wire [7:0] n;
  wire [99:0] w;
  assign n = in_n;
  assign w = in_w;
endmodule`)
	settle := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	nv := bits.FromUint64(8, 0x5a)
	wv := bits.FromUint64(100, 0x1234)
	m.SetInput(f.VarNamed("in_n"), nv)
	m.SetInput(f.VarNamed("in_w"), wv)
	settle()
	// Caller scribbles on its vectors after the call.
	nv.SetUint64(0xff)
	wv.SetUint64(0xffff)
	if got := m.ReadVar(f.VarNamed("in_n")).Uint64(); got != 0x5a {
		t.Fatalf("SetInput aliased narrow caller vector: %#x", got)
	}
	if got := m.ReadVar(f.VarNamed("in_w")).Uint64(); got != 0x1234 {
		t.Fatalf("SetInput aliased wide caller vector: %#x", got)
	}

	// Same for SetState: the snapshot stays caller-owned.
	snap := m.GetState()
	m2 := NewMachine(m.Prog())
	m2.SetState(snap)
	snap.Scalars["in_w"].SetUint64(0xdead)
	snap.Scalars["in_n"].SetUint64(0xde)
	if got := m2.ReadVar(f.VarNamed("in_w")).Uint64(); got != 0x1234 {
		t.Fatalf("SetState aliased wide snapshot vector: %#x", got)
	}
	if got := m2.ReadVar(f.VarNamed("in_n")).Uint64(); got != 0x5a {
		t.Fatalf("SetState aliased narrow snapshot vector: %#x", got)
	}

	// And outbound: ReadVar/GetState results are owned by the caller.
	out := m2.ReadVar(f.VarNamed("in_w"))
	out.SetUint64(0)
	if got := m2.ReadVar(f.VarNamed("in_w")).Uint64(); got != 0x1234 {
		t.Fatalf("ReadVar returned a live internal vector")
	}
	st := m2.GetState()
	st.Scalars["in_n"].SetUint64(0)
	if got := m2.ReadVar(f.VarNamed("in_n")).Uint64(); got != 0x5a {
		t.Fatalf("GetState returned a live internal vector")
	}
}

// --- Satellite: narrow-slot read allocations --------------------------

// slotVec must not allocate for narrow slots once the scratch vector is
// warm, and ReadVar pays exactly one fresh vector (2 allocs: header +
// words). Guard both so the hot read path can't regress.
func TestNarrowReadAllocs(t *testing.T) {
	_, m, f := compileBoth(t, `
module M(input wire [7:0] in_n);
  wire [7:0] n;
  assign n = in_n;
endmodule`)
	v := f.VarNamed("in_n")
	slot := m.prog.VarSlot[v.Index]
	m.slotVec(slot) // warm the scratch
	if n := testing.AllocsPerRun(200, func() { m.slotVec(slot) }); n != 0 {
		t.Fatalf("slotVec allocates on narrow slots: %v allocs/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.ReadVar(v) }); n > 2 {
		t.Fatalf("ReadVar narrow: %v allocs/op, want <= 2", n)
	}
}

func BenchmarkReadVarNarrow(b *testing.B) {
	st, errs := verilog.ParseSourceText(`
module M(input wire [7:0] in_n);
  wire [7:0] n;
  assign n = in_n;
endmodule`)
	if errs != nil {
		b.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		b.Fatalf("elaborate: %v", err)
	}
	prog, err := Compile(f)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	m := NewMachine(prog)
	v := f.VarNamed("in_n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadVar(v)
	}
}

// --- Satellite: fingerprint determinism -------------------------------

// Property: the fingerprint is a pure function of the source — identical
// source elaborated twice hashes identically, and re-hashing the same
// program across Go's randomized map iteration order is stable. The
// native tier's cache key and the bitstream cache key share this hash.
func TestFingerprintDeterministic(t *testing.T) {
	g := &progGen{r: rand.New(rand.NewSource(99))}
	for trial := 0; trial < 15; trial++ {
		src := g.generate()
		_, m1, _ := compileBoth(t, src)
		_, m2, _ := compileBoth(t, src)
		fp := m1.Prog().Fingerprint()
		if fp2 := m2.Prog().Fingerprint(); fp2 != fp {
			t.Fatalf("trial %d: same source, different fingerprints\n%s\n%s\nprogram:\n%s", trial, fp, fp2, src)
		}
		// ResetState/ResetMems are maps: repeated hashing exercises
		// Go's per-iteration randomized map order.
		for i := 0; i < 8; i++ {
			if again := m1.Prog().Fingerprint(); again != fp {
				t.Fatalf("trial %d: fingerprint unstable across re-hashing: %s vs %s", trial, fp, again)
			}
		}
	}
	// Sanity: different sources do differ.
	_, a, _ := compileBoth(t, "module M(input wire clk);\n  reg r = 0;\n  always @(posedge clk) r <= ~r;\nendmodule")
	_, b, _ := compileBoth(t, "module M(input wire clk);\n  reg r = 1;\n  always @(posedge clk) r <= ~r;\nendmodule")
	if a.Prog().Fingerprint() == b.Prog().Fingerprint() {
		t.Fatal("distinct programs share a fingerprint")
	}
}
