// Package netlist synthesizes an elaborated subprogram into a word-level
// RTL netlist and provides a compiled cycle evaluator for it — the
// "bitstream" executed by Cascade-Go's simulated FPGA.
//
// Compilation levelizes combinational logic (continuous assignments, @*
// and level-sensitive processes) into a feed-forward instruction schedule
// and lowers every process body to a small register machine with jump
// instructions. Values at or below 64 bits execute on a fast uint64 path;
// wider values fall back to bits.Vector arithmetic. The package also
// derives the area and critical-path statistics that the blackbox
// toolchain model (internal/toolchain) uses for compile-latency, fit, and
// timing-closure decisions.
//
// Observable-state equivalence between this evaluator and the reference
// event-driven interpreter (internal/sim) is the load-bearing invariant of
// the whole system; it is property-tested in equiv_test.go.
package netlist

import (
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/elab"
)

// OpKind enumerates netlist instructions.
type OpKind int

// Instruction kinds.
const (
	OpConst OpKind = iota // dst = const
	OpMove                // dst = resize(src0, width)
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpPow
	OpAnd
	OpOr
	OpXor
	OpXnor
	OpNot    // bitwise complement
	OpNeg    // two's complement negate
	OpLogNot // dst = (src0 == 0)
	OpRedAnd
	OpRedOr
	OpRedXor
	OpRedNand
	OpRedNor
	OpRedXnor
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLogAnd
	OpLogOr
	OpShl // dynamic shift amount in src1
	OpShr
	OpSlice    // dst = src0[hi:lo]
	OpBitSel   // dst = src0[src1], 0 if out of range
	OpConcat   // dst = {srcs...}, MSB first
	OpRepl     // dst = {n{src0}}
	OpMux      // dst = src0 ? src1 : src2
	OpTime     // dst = virtual time
	OpMemRead  // dst = mem[src0]
	OpJump     // pc = Target
	OpJz       // if src0 == 0 then pc = Target
	OpWrite    // write full var slot Dst from src0 (blocking)
	OpWriteRng // write var slot bits [hi:lo] from src0 (blocking)
	OpWriteBit // write var slot bit [src1] from src0 (blocking)
	OpMemWrite // mem[src1] = src0 (blocking)
	OpWriteNB  // non-blocking variants: queue for Update
	OpWriteRngNB
	OpWriteBitNB
	OpMemWriteNB
	OpDisplay // emit task Aux with captured args
	OpFinish
	OpHalt // end of a compiled body
)

// Op is one netlist instruction. Fields are interpreted per kind.
type Op struct {
	Kind   OpKind
	Dst    int   // destination slot (or variable slot for writes)
	Srcs   []int // source slots
	Width  int   // result width
	Hi, Lo int   // slice / ranged write bounds
	N      int   // replication count
	Target int   // jump target pc
	Aux    int   // task index (display), mem index (mem ops)
	Const  *bits.Vector
	Wide   bool // any operand or result wider than 64 bits
}

// Task is a system task compiled into the netlist.
type Task struct {
	Src     *elab.SysTask
	Monitor bool
}

// MemInfo describes one synthesized memory block.
type MemInfo struct {
	Var   *elab.Var
	Words int
	Width int
	Wide  bool
}

// SeqProc is a compiled edge-triggered process.
type SeqProc struct {
	Edges []elab.Edge
	Entry int // pc into Code
}

// CombUnit is one levelized combinational unit.
type CombUnit struct {
	Entry int // pc into Code
}

// MonitorUnit is a compiled $monitor: a code unit that captures the
// monitored values, run at the end of each time step.
type MonitorUnit struct {
	Entry int // pc into Code
}

// Program is a synthesized netlist: shared code array, slot metadata, and
// the schedule.
type Program struct {
	Flat *elab.Flat

	Code  []Op
	Slots []SlotInfo

	VarSlot []int // Var.Index -> slot (scalars; -1 for memories)
	Mems    []MemInfo
	MemOf   []int // Var.Index -> mem index or -1

	Comb     []CombUnit // in topological order
	Seq      []SeqProc
	Monitors []MonitorUnit
	Tasks    []Task

	// ResetState is the post-initial-block state captured at synthesis
	// time (FPGA bitstreams carry initial register contents).
	ResetState map[string]*bits.Vector
	ResetMems  map[string][]*bits.Vector

	Stats Stats
}

// SlotInfo describes one value slot.
type SlotInfo struct {
	Width int
	Wide  bool
	Var   *elab.Var // non-nil if this slot backs a named variable
}

// Error is a synthesis error.
type Error struct{ Msg string }

func (e *Error) Error() string { return "netlist: " + e.Msg }

func errf(format string, args ...any) error {
	return &Error{Msg: fmt.Sprintf(format, args...)}
}
