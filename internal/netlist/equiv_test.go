package netlist

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/sim"
	"cascade/internal/verilog"
)

// This file holds the flagship invariant test of the reproduction:
// observable-state equivalence between the event-driven reference
// interpreter (internal/sim, the software engine) and the compiled netlist
// machine (this package, the hardware engine). If this property holds,
// Cascade can hand execution back and forth between engines without the
// user being able to tell — the core of the paper's design.

func compileBoth(t *testing.T, src string) (*sim.Simulator, *Machine, *elab.Flat) {
	t.Helper()
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	prog, err := Compile(f)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return sim.New(f, sim.Options{}), NewMachine(prog), f
}

// dualBench drives a simulator and a machine in lock step.
type dualBench struct {
	s    *sim.Simulator
	m    *Machine
	f    *elab.Flat
	sOut strings.Builder
	mOut strings.Builder
}

func newDual(t *testing.T, src string) *dualBench {
	t.Helper()
	d := &dualBench{}
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	prog, err := Compile(f)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d.f = f
	d.s = sim.New(f, sim.Options{Display: func(x string) { d.sOut.WriteString(x) }})
	d.m = NewMachine(prog)
	d.settle()
	return d
}

func (d *dualBench) drainMachine() {
	for _, ev := range d.m.DrainEvents() {
		if ev.Finish {
			continue
		}
		d.mOut.WriteString(ev.Text)
		if ev.Newline {
			d.mOut.WriteString("\n")
		}
	}
}

func (d *dualBench) settle() {
	for d.s.HasActive() || d.s.HasUpdates() {
		d.s.Evaluate()
		if d.s.HasUpdates() {
			d.s.Update()
		}
	}
	d.s.EndStep()
	for d.m.HasActive() || d.m.HasUpdates() {
		d.m.Evaluate()
		if d.m.HasUpdates() {
			d.m.Update()
		}
	}
	d.m.EndStep()
	d.drainMachine()
}

func (d *dualBench) setInput(name string, v *bits.Vector) {
	va := d.f.VarNamed(name)
	d.s.SetInput(va, v)
	d.m.SetInput(va, v)
}

func (d *dualBench) check(t *testing.T, context string) {
	t.Helper()
	ss := d.s.GetState().Signature()
	ms := d.m.GetState().Signature()
	if ss != ms {
		t.Fatalf("%s: state divergence\nsim:     %s\nmachine: %s", context, ss, ms)
	}
	if d.sOut.String() != d.mOut.String() {
		t.Fatalf("%s: display divergence\nsim:     %q\nmachine: %q", context, d.sOut.String(), d.mOut.String())
	}
}

func (d *dualBench) tick(t *testing.T) {
	t.Helper()
	d.setInput("clk", bits.FromUint64(1, 1))
	d.settle()
	d.setInput("clk", bits.FromUint64(1, 0))
	d.settle()
}

func TestEquivCounter(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, output reg [7:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	for i := 0; i < 20; i++ {
		d.tick(t)
		d.check(t, fmt.Sprintf("tick %d", i))
	}
}

func TestEquivRunningExample(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, input wire [3:0] pad, output wire [7:0] led);
  reg [7:0] cnt = 1;
  wire [7:0] y;
  assign y = (cnt == 8'h80) ? 1 : (cnt << 1);
  always @(posedge clk)
    if (pad == 0)
      cnt <= y;
    else
      $display("paused at %d", cnt);
  assign led = cnt;
endmodule`)
	for i := 0; i < 10; i++ {
		d.tick(t)
	}
	d.check(t, "animation")
	d.setInput("pad", bits.FromUint64(4, 2))
	d.settle()
	d.tick(t)
	d.check(t, "paused with display")
}

func TestEquivWideDatapath(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, input wire [7:0] x);
  reg [127:0] acc = 128'h1;
  wire [127:0] nxt;
  assign nxt = (acc << 1) ^ {16{x}} + acc;
  always @(posedge clk) acc <= nxt;
endmodule`)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		d.setInput("x", bits.FromUint64(8, r.Uint64()))
		d.settle()
		d.tick(t)
		d.check(t, fmt.Sprintf("wide tick %d", i))
	}
}

func TestEquivMemory(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, input wire [3:0] addr, input wire [15:0] wdata,
         input wire we, output wire [15:0] rdata);
  reg [15:0] mem [0:15];
  assign rdata = mem[addr];
  always @(posedge clk) if (we) mem[addr] <= wdata;
endmodule`)
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 50; i++ {
		d.setInput("addr", bits.FromUint64(4, r.Uint64()))
		d.setInput("wdata", bits.FromUint64(16, r.Uint64()))
		d.setInput("we", bits.FromUint64(1, r.Uint64()))
		d.settle()
		d.tick(t)
		d.check(t, fmt.Sprintf("mem tick %d", i))
	}
}

func TestEquivCaseAndDisplay(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, input wire [1:0] s);
  reg [7:0] x = 0;
  always @(posedge clk) begin
    case (s)
      2'd0: x <= x + 1;
      2'd1: x <= x << 1;
      2'd2: begin x <= x - 1; $display("dec %d", x); end
      default: x <= 8'hff;
    endcase
    if (x > 100) $display("big: %h at %d", x, $time);
  end
endmodule`)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		d.setInput("s", bits.FromUint64(2, r.Uint64()))
		d.settle()
		d.tick(t)
		d.check(t, fmt.Sprintf("case tick %d", i))
	}
}

func TestEquivNegedgeAndGatedClock(t *testing.T) {
	d := newDual(t, `
module M(input wire clk, input wire en);
  wire gclk;
  assign gclk = clk & en;
  reg [7:0] a = 0, b = 0;
  always @(negedge clk) a <= a + 1;
  always @(posedge gclk) b <= b + 3;
endmodule`)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 40; i++ {
		d.setInput("en", bits.FromUint64(1, r.Uint64()))
		d.settle()
		d.tick(t)
		d.check(t, fmt.Sprintf("gated tick %d", i))
	}
}

func TestEquivMigrationMidRun(t *testing.T) {
	src := `
module M(input wire clk, input wire [3:0] d);
  reg [15:0] lfsr = 16'hace1;
  reg [15:0] hist [0:7];
  reg [2:0] wp = 0;
  wire fb;
  assign fb = lfsr[0] ^ lfsr[2] ^ lfsr[3] ^ lfsr[5];
  always @(posedge clk) begin
    lfsr <= {fb, lfsr[15:1]} ^ {12'b0, d};
    hist[wp] <= lfsr;
    wp <= wp + 1;
  end
endmodule`
	s, m, f := compileBoth(t, src)
	clk := f.VarNamed("clk")
	dv := f.VarNamed("d")
	settleS := func() {
		for s.HasActive() || s.HasUpdates() {
			s.Evaluate()
			if s.HasUpdates() {
				s.Update()
			}
		}
	}
	settleM := func() {
		for m.HasActive() || m.HasUpdates() {
			m.Evaluate()
			if m.HasUpdates() {
				m.Update()
			}
		}
	}
	r := rand.New(rand.NewSource(11))
	settleS()
	// Phase 1: run 10 ticks in "software".
	for i := 0; i < 10; i++ {
		s.SetInput(dv, bits.FromUint64(4, r.Uint64()))
		settleS()
		s.SetInput(clk, bits.FromUint64(1, 1))
		settleS()
		s.SetInput(clk, bits.FromUint64(1, 0))
		settleS()
	}
	// Migrate: hardware engine inherits state (set_state).
	m.SetState(s.GetState())
	settleM()
	if s.GetState().Signature() != m.GetState().Signature() {
		t.Fatal("state not preserved across software->hardware migration")
	}
	// Phase 2: run both 10 more ticks with identical inputs; they must
	// stay in lock step.
	for i := 0; i < 10; i++ {
		in := bits.FromUint64(4, r.Uint64())
		s.SetInput(dv, in)
		m.SetInput(dv, in)
		settleS()
		settleM()
		for _, c := range []uint64{1, 0} {
			s.SetInput(clk, bits.FromUint64(1, c))
			m.SetInput(clk, bits.FromUint64(1, c))
			settleS()
			settleM()
		}
		if s.GetState().Signature() != m.GetState().Signature() {
			t.Fatalf("divergence after migration at tick %d", i)
		}
	}
	// Migrate back: software engine inherits hardware state.
	s2 := sim.New(f, sim.Options{})
	s2.SetState(m.GetState())
	s2.Evaluate()
	if s2.GetState().Signature() != m.GetState().Signature() {
		t.Fatal("state not preserved across hardware->software migration")
	}
}

// --- Random program equivalence ---------------------------------------

type progGen struct {
	r    *rand.Rand
	sb   strings.Builder
	wire int
}

// randExpr emits a random expression over the given readable names.
func (g *progGen) randExpr(depth int, reads []string) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		if g.r.Intn(3) == 0 {
			return fmt.Sprintf("%d'd%d", 1+g.r.Intn(12), g.r.Intn(1<<10))
		}
		return reads[g.r.Intn(len(reads))]
	}
	switch g.r.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 2:
		return fmt.Sprintf("(%s & %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 3:
		return fmt.Sprintf("(%s | %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 4:
		return fmt.Sprintf("(%s ^ %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 5:
		return fmt.Sprintf("(%s * %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 6:
		return fmt.Sprintf("(%s >> %d)", g.randExpr(depth-1, reads), g.r.Intn(9))
	case 7:
		return fmt.Sprintf("(%s << %d)", g.randExpr(depth-1, reads), g.r.Intn(9))
	case 8:
		return fmt.Sprintf("(%s ? %s : %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 9:
		return fmt.Sprintf("{%s, %s}", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	case 10:
		return fmt.Sprintf("(%s < %s)", g.randExpr(depth-1, reads), g.randExpr(depth-1, reads))
	default:
		return fmt.Sprintf("(~%s)", g.randExpr(depth-1, reads))
	}
}

// generate builds a random synchronous module that is legal for both
// engines: acyclic combinational wires, registers driven by exactly one
// posedge process.
func (g *progGen) generate() string {
	g.sb.Reset()
	fmt.Fprintf(&g.sb, "module M(input wire clk, input wire [7:0] a, input wire [7:0] b);\n")
	reads := []string{"a", "b"}
	nregs := 2 + g.r.Intn(3)
	for i := 0; i < nregs; i++ {
		w := []int{1, 4, 8, 16, 33, 80}[g.r.Intn(6)]
		fmt.Fprintf(&g.sb, "  reg [%d:0] r%d = %d;\n", w-1, i, g.r.Intn(100))
		reads = append(reads, fmt.Sprintf("r%d", i))
	}
	nwires := 1 + g.r.Intn(4)
	for i := 0; i < nwires; i++ {
		w := []int{1, 8, 12, 65}[g.r.Intn(4)]
		fmt.Fprintf(&g.sb, "  wire [%d:0] w%d;\n", w-1, i)
	}
	// Wires assigned in order, reading only earlier names: acyclic.
	for i := 0; i < nwires; i++ {
		fmt.Fprintf(&g.sb, "  assign w%d = %s;\n", i, g.randExpr(3, reads))
		reads = append(reads, fmt.Sprintf("w%d", i))
	}
	// One posedge process per register.
	for i := 0; i < nregs; i++ {
		fmt.Fprintf(&g.sb, "  always @(posedge clk)\n")
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "    if (%s)\n      r%d <= %s;\n    else\n      r%d <= %s;\n",
				g.randExpr(2, reads), i, g.randExpr(3, reads), i, g.randExpr(3, reads))
		} else {
			fmt.Fprintf(&g.sb, "    r%d <= %s;\n", i, g.randExpr(3, reads))
		}
	}
	fmt.Fprintf(&g.sb, "endmodule\n")
	return g.sb.String()
}

// Property: for random synchronous programs and random stimulus, the
// interpreter and the compiled netlist agree on every observable state.
func TestEquivRandomPrograms(t *testing.T) {
	g := &progGen{r: rand.New(rand.NewSource(42))}
	for trial := 0; trial < 60; trial++ {
		src := g.generate()
		d := newDual(t, src)
		for i := 0; i < 12; i++ {
			d.setInput("a", bits.FromUint64(8, g.r.Uint64()))
			d.setInput("b", bits.FromUint64(8, g.r.Uint64()))
			d.settle()
			d.tick(t)
		}
		ss := d.s.GetState().Signature()
		ms := d.m.GetState().Signature()
		if ss != ms {
			t.Fatalf("trial %d: divergence on program:\n%s\nsim:     %s\nmachine: %s", trial, src, ss, ms)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"comb loop": `
module M(input wire clk);
  wire a, b;
  assign a = b;
  assign b = a;
endmodule`,
		"double drive": `
module M(input wire clk, input wire x);
  reg r;
  always @(posedge clk) r <= x;
  always @(*) r = !x;
endmodule`,
		"mixed sensitivity": `
module M(input wire clk, input wire x);
  reg r;
  always @(posedge clk or x) r <= x;
endmodule`,
	}
	for name, src := range cases {
		st, errs := verilog.ParseSourceText(src)
		if errs != nil {
			t.Fatalf("%s: parse: %v", name, errs)
		}
		f, err := elab.Elaborate(st.Modules[0], "dut", nil)
		if err != nil {
			t.Fatalf("%s: elaborate: %v", name, err)
		}
		if _, err := Compile(f); err == nil {
			t.Fatalf("%s: expected synthesis error", name)
		}
	}
}

func TestStatsReasonable(t *testing.T) {
	st, errs := verilog.ParseSourceText(`
module M(input wire clk, input wire [31:0] x, output reg [31:0] acc);
  wire [31:0] sq;
  assign sq = x * x;
  reg [31:0] mem [0:255];
  always @(posedge clk) acc <= acc + sq;
endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats
	if s.FFs < 32 {
		t.Fatalf("FF count %d too small", s.FFs)
	}
	if s.MemBits != 256*32 {
		t.Fatalf("MemBits = %d, want %d", s.MemBits, 256*32)
	}
	if s.Cells < 32 { // multiplier alone should dominate
		t.Fatalf("cell count %d too small", s.Cells)
	}
	if s.CritPath < 2 {
		t.Fatalf("critical path %d too shallow", s.CritPath)
	}
}

func TestResetStateIncludesInitials(t *testing.T) {
	st, errs := verilog.ParseSourceText(`
module M(input wire clk);
  reg [7:0] a = 5;
  reg [7:0] mem [0:3];
  integer i;
  initial for (i = 0; i < 4; i = i + 1) mem[i] = i + 10;
endmodule`)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p)
	got := m.GetState()
	if got.Scalars["a"].Uint64() != 5 {
		t.Fatal("reg init lost")
	}
	if got.Arrays["mem"][2].Uint64() != 12 {
		t.Fatal("initial-block memory contents lost")
	}
}

func BenchmarkMachineCounterTick(b *testing.B) {
	st, _ := verilog.ParseSourceText(`
module M(input wire clk, output reg [31:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	f, _ := elab.Elaborate(st.Modules[0], "dut", nil)
	p, _ := Compile(f)
	m := NewMachine(p)
	clk := f.VarNamed("clk")
	one, zero := bits.FromUint64(1, 1), bits.FromUint64(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetInput(clk, one)
		m.Evaluate()
		m.Update()
		m.Evaluate()
		m.SetInput(clk, zero)
		m.Evaluate()
	}
}

func BenchmarkSimCounterTick(b *testing.B) {
	st, _ := verilog.ParseSourceText(`
module M(input wire clk, output reg [31:0] cnt);
  always @(posedge clk) cnt <= cnt + 1;
endmodule`)
	f, _ := elab.Elaborate(st.Modules[0], "dut", nil)
	s := sim.New(f, sim.Options{})
	clk := f.VarNamed("clk")
	one, zero := bits.FromUint64(1, 1), bits.FromUint64(1, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetInput(clk, one)
		s.Evaluate()
		s.Update()
		s.Evaluate()
		s.SetInput(clk, zero)
		s.Evaluate()
	}
}
