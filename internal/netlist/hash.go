package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"

	bv "cascade/internal/bits"
)

// Fingerprint returns a canonical content hash of the synthesized
// netlist: two programs with the same fingerprint execute identically —
// same code, same slot layout, same schedule, same reset state, and the
// same system-task side effects (including the instance path reported by
// %m). The toolchain's bitstream cache is keyed on this hash, so
// re-synthesizing an unchanged design (an edit that undoes a change, a
// snapshot restored onto a same-shape device) can skip place-and-route
// entirely.
func (p *Program) Fingerprint() string {
	h := sha256.New()
	ws := func(s string) {
		binary.Write(h, binary.LittleEndian, uint32(len(s)))
		h.Write([]byte(s))
	}
	wi := func(vs ...int) {
		for _, v := range vs {
			binary.Write(h, binary.LittleEndian, int64(v))
		}
	}
	wvec := func(v *bv.Vector) {
		if v == nil {
			ws("<nil>")
			return
		}
		ws(v.String())
	}

	ws(p.Flat.Name) // %m output is part of observable behaviour

	wi(len(p.Code))
	for i := range p.Code {
		op := &p.Code[i]
		wi(int(op.Kind), op.Dst, op.Width, op.Hi, op.Lo, op.N, op.Target, op.Aux)
		wi(len(op.Srcs))
		wi(op.Srcs...)
		if op.Wide {
			wi(1)
		} else {
			wi(0)
		}
		wvec(op.Const)
	}

	wi(len(p.Slots))
	for _, s := range p.Slots {
		wi(s.Width)
		if s.Wide {
			wi(1)
		} else {
			wi(0)
		}
		if s.Var != nil {
			ws(s.Var.Name)
		} else {
			ws("")
		}
	}

	wi(len(p.VarSlot))
	wi(p.VarSlot...)
	wi(len(p.MemOf))
	wi(p.MemOf...)
	wi(len(p.Mems))
	for _, m := range p.Mems {
		ws(m.Var.Name)
		wi(m.Words, m.Width)
	}

	wi(len(p.Comb))
	for _, c := range p.Comb {
		wi(c.Entry)
	}
	wi(len(p.Seq))
	for _, sp := range p.Seq {
		wi(sp.Entry, len(sp.Edges))
		for _, e := range sp.Edges {
			wi(int(e.Kind), e.Var.Index)
		}
	}
	wi(len(p.Monitors))
	for _, m := range p.Monitors {
		wi(m.Entry)
	}
	wi(len(p.Tasks))
	for _, t := range p.Tasks {
		wi(int(t.Src.Kind))
		ws(t.Src.Format)
		if t.Monitor {
			wi(1)
		} else {
			wi(0)
		}
	}

	hashStateMap(h, ws, p.ResetState)
	// Reset memories, in sorted order for determinism.
	names := make([]string, 0, len(p.ResetMems))
	for n := range p.ResetMems {
		names = append(names, n)
	}
	sort.Strings(names)
	wi(len(names))
	for _, n := range names {
		ws(n)
		words := p.ResetMems[n]
		wi(len(words))
		for _, w := range words {
			wvec(w)
		}
	}

	return hex.EncodeToString(h.Sum(nil))
}

func hashStateMap(h hash.Hash, ws func(string), m map[string]*bv.Vector) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	binary.Write(h, binary.LittleEndian, uint32(len(names)))
	for _, n := range names {
		ws(n)
		ws(m[n].String())
	}
}
