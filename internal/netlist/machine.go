package netlist

import (
	"math/bits"

	bv "cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/sim"
)

// DisplayEvent is a system-task side effect captured during hardware
// execution and forwarded to the runtime (printf from hardware, §3.5).
type DisplayEvent struct {
	Text    string
	Newline bool
	Finish  bool
}

// Machine executes a compiled netlist program cycle-accurately. It mirrors
// the evaluate/update interface of the reference simulator so both can sit
// behind the same engine ABI.
type Machine struct {
	prog *Program

	u64   []uint64     // narrow slot values
	wide  []*bv.Vector // wide slot values (nil for narrow slots)
	mem64 [][]uint64
	memW  [][]*bv.Vector

	combDirty  bool
	seqTrig    []bool
	seqPending bool
	edgeWatch  map[int][]edgeHook // slot -> interested seq procs
	edgeList   [][]edgeHook       // edgeWatch flattened per slot (hot path)

	pending  []mPending
	events   []DisplayEvent
	monLast  []string
	finished bool

	// scratch holds one lazily-allocated vector per narrow slot so
	// slotVec can materialize transient reads without allocating.
	scratch []*bv.Vector

	// NowFn supplies $time.
	NowFn func() uint64

	// ChangeHook, when non-nil, is invoked after every committed state
	// change: variable-slot changes pass the slot index (>= 0), memory
	// word changes pass -1-mem. The native tier (internal/njit)
	// registers it to drive sensitivity-based combinational scheduling.
	ChangeHook func(slot int)

	// Cycles counts Evaluate calls that did work; Ops counts executed
	// instructions (the performance model's compute proxy).
	Cycles uint64
	Ops    uint64
}

type edgeHook struct {
	proc int
	kind elab.EdgeKind
}

type mPending struct {
	slot   int // -1 for memory writes
	mem    int
	word   int
	hasRng bool
	hi, lo int
	u      uint64
	w      *bv.Vector
	wide   bool
}

// NewMachine loads a program into a fresh machine and applies the reset
// state (initial register contents from the bitstream).
func NewMachine(p *Program) *Machine {
	m := &Machine{
		prog:      p,
		u64:       make([]uint64, len(p.Slots)),
		wide:      make([]*bv.Vector, len(p.Slots)),
		seqTrig:   make([]bool, len(p.Seq)),
		edgeWatch: map[int][]edgeHook{},
		monLast:   make([]string, len(p.Monitors)),
		scratch:   make([]*bv.Vector, len(p.Slots)),
	}
	for i, s := range p.Slots {
		if s.Wide {
			m.wide[i] = bv.New(s.Width)
		}
	}
	m.mem64 = make([][]uint64, len(p.Mems))
	m.memW = make([][]*bv.Vector, len(p.Mems))
	for i, mi := range p.Mems {
		if mi.Wide {
			ws := make([]*bv.Vector, mi.Words)
			for j := range ws {
				ws[j] = bv.New(mi.Width)
			}
			m.memW[i] = ws
		} else {
			m.mem64[i] = make([]uint64, mi.Words)
		}
	}
	for pi, sp := range p.Seq {
		for _, e := range sp.Edges {
			slot := p.VarSlot[e.Var.Index]
			m.edgeWatch[slot] = append(m.edgeWatch[slot], edgeHook{proc: pi, kind: e.Kind})
		}
	}
	m.edgeList = make([][]edgeHook, len(p.Slots))
	for slot, hs := range m.edgeWatch {
		m.edgeList[slot] = hs
	}
	m.Reset()
	return m
}

// Prog returns the loaded program.
func (m *Machine) Prog() *Program { return m.prog }

// Reset applies the bitstream's initial state and schedules a full
// combinational pass.
func (m *Machine) Reset() {
	st := &sim.State{Scalars: m.prog.ResetState, Arrays: m.prog.ResetMems}
	m.SetState(st)
	m.finished = false
	m.pending = nil
}

// Finished reports whether $finish has executed.
func (m *Machine) Finished() bool { return m.finished }

// DrainEvents returns and clears captured display/finish events.
func (m *Machine) DrainEvents() []DisplayEvent {
	ev := m.events
	m.events = nil
	return ev
}

// HasEvents reports whether undrained events exist.
func (m *Machine) HasEvents() bool { return len(m.events) > 0 }

func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// slotVec materializes a slot as a bit vector. The result is borrowed:
// wide slots return the live backing vector, narrow slots return a
// per-slot scratch vector that stays valid only until the next read of
// the same slot. Callers that retain the value must Clone it (or use
// slotVecOwned).
func (m *Machine) slotVec(i int) *bv.Vector {
	if m.wide[i] != nil {
		return m.wide[i]
	}
	s := m.scratch[i]
	if s == nil {
		s = bv.New(m.prog.Slots[i].Width)
		m.scratch[i] = s
	}
	s.SetUint64(m.u64[i])
	return s
}

// slotVecOwned materializes a slot as a freshly-allocated vector the
// caller may retain and mutate.
func (m *Machine) slotVecOwned(i int) *bv.Vector {
	if m.wide[i] != nil {
		return m.wide[i].Clone()
	}
	return bv.FromUint64(m.prog.Slots[i].Width, m.u64[i])
}

// setSlotRaw stores a value without change detection (temporaries).
func (m *Machine) setSlotRaw(i int, v *bv.Vector) {
	if m.wide[i] != nil {
		m.wide[i].CopyFrom(v)
		return
	}
	m.u64[i] = v.Uint64() & mask(m.prog.Slots[i].Width)
}

// writeVarSlot stores into a variable-backed slot with change detection,
// marking combinational logic dirty and firing edge triggers.
func (m *Machine) writeVarSlot(i int, newU uint64, newW *bv.Vector, isWide bool) bool {
	if isWide || m.wide[i] != nil {
		v := newW
		if v == nil {
			v = bv.FromUint64(m.prog.Slots[i].Width, newU)
		}
		if m.wide[i] != nil {
			oldLSB := m.wide[i].Bit(0)
			if !m.wide[i].CopyFrom(v) {
				return false
			}
			m.onVarChange(i, oldLSB, m.wide[i].Bit(0))
			return true
		}
		newU = v.Uint64()
	}
	newU &= mask(m.prog.Slots[i].Width)
	old := m.u64[i]
	if old == newU {
		return false
	}
	m.u64[i] = newU
	m.onVarChange(i, uint(old&1), uint(newU&1))
	return true
}

func (m *Machine) onVarChange(slot int, oldLSB, newLSB uint) {
	m.combDirty = true
	if m.ChangeHook != nil {
		m.ChangeHook(slot)
	}
	for _, h := range m.edgeList[slot] {
		if (h.kind == elab.Pos && oldLSB == 0 && newLSB == 1) ||
			(h.kind == elab.Neg && oldLSB == 1 && newLSB == 0) {
			m.seqTrig[h.proc] = true
			m.seqPending = true
		}
	}
}

// SetInput drives an input variable (engine ABI read).
func (m *Machine) SetInput(v *elab.Var, val *bv.Vector) {
	slot := m.prog.VarSlot[v.Index]
	m.writeVarSlot(slot, val.Uint64(), val, m.prog.Slots[slot].Wide)
}

// ReadVar returns the current value of a scalar variable. The result is
// owned by the caller.
func (m *Machine) ReadVar(v *elab.Var) *bv.Vector {
	return m.slotVecOwned(m.prog.VarSlot[v.Index])
}

// HasActive reports pending evaluation work (there_are_evals).
func (m *Machine) HasActive() bool { return m.combDirty || m.seqPending }

// HasUpdates reports queued non-blocking writes (there_are_updates).
func (m *Machine) HasUpdates() bool { return len(m.pending) > 0 }

// Evaluate runs triggered sequential processes and then settles
// combinational logic (one EvalAll batch).
func (m *Machine) Evaluate() {
	worked := false
	for m.seqPending || m.combDirty {
		worked = true
		if m.seqPending {
			m.seqPending = false
			for i := range m.seqTrig {
				if m.seqTrig[i] {
					m.seqTrig[i] = false
					m.exec(m.prog.Seq[i].Entry)
				}
			}
		}
		if m.combDirty {
			m.combDirty = false
			for _, u := range m.prog.Comb {
				m.exec(u.Entry)
			}
		}
	}
	if worked {
		m.Cycles++
	}
}

// Update commits queued non-blocking writes (the update batch).
func (m *Machine) Update() {
	pend := m.pending
	m.pending = nil
	for _, p := range pend {
		if p.slot < 0 {
			m.commitMem(p)
			continue
		}
		if p.hasRng {
			cur := m.slotVecOwned(p.slot)
			var val *bv.Vector
			if p.wide {
				val = p.w
			} else {
				val = bv.FromUint64(p.hi-p.lo+1, p.u)
			}
			if cur.SetSlice(p.hi, p.lo, val) {
				m.writeVarSlot(p.slot, cur.Uint64(), cur, true)
			}
			continue
		}
		m.writeVarSlot(p.slot, p.u, p.w, p.wide)
	}
}

func (m *Machine) commitMem(p mPending) {
	mi := m.prog.Mems[p.mem]
	if p.word < 0 || p.word >= mi.Words {
		return
	}
	if mi.Wide {
		m.memW[p.mem][p.word].CopyFrom(p.w)
	} else {
		m.mem64[p.mem][p.word] = p.u & mask(mi.Width)
	}
	m.combDirty = true
	if m.ChangeHook != nil {
		m.ChangeHook(-1 - p.mem)
	}
}

// EndStep re-evaluates $monitor units and emits changed lines.
func (m *Machine) EndStep() {
	for i, mon := range m.prog.Monitors {
		m.exec(mon.Entry)
		// The unit's OpDisplay appended an event; convert the trailing
		// event into a monitor line only when it changed.
		if len(m.events) == 0 {
			continue
		}
		ev := m.events[len(m.events)-1]
		m.events = m.events[:len(m.events)-1]
		if m.monLast[i] != ev.Text || m.monLast[i] == "" {
			m.monLast[i] = ev.Text
			m.events = append(m.events, ev)
		}
	}
}

// GetState snapshots all variables into a sim.State (shared snapshot
// format across engine kinds).
func (m *Machine) GetState() *sim.State {
	st := &sim.State{Scalars: map[string]*bv.Vector{}, Arrays: map[string][]*bv.Vector{}}
	for _, v := range m.prog.Flat.Vars {
		if v.IsArray() {
			idx := m.prog.MemOf[v.Index]
			words := make([]*bv.Vector, v.ArrayLen)
			for j := 0; j < v.ArrayLen; j++ {
				if m.prog.Mems[idx].Wide {
					words[j] = m.memW[idx][j].Clone()
				} else {
					words[j] = bv.FromUint64(v.Width, m.mem64[idx][j])
				}
			}
			st.Arrays[v.Name] = words
			continue
		}
		st.Scalars[v.Name] = m.slotVecOwned(m.prog.VarSlot[v.Index])
	}
	return st
}

// SetState installs a snapshot without fabricating edges, then schedules
// a combinational settle.
func (m *Machine) SetState(st *sim.State) {
	for _, v := range m.prog.Flat.Vars {
		if v.IsArray() {
			words, ok := st.Arrays[v.Name]
			if !ok {
				continue
			}
			idx := m.prog.MemOf[v.Index]
			for j := 0; j < len(words) && j < v.ArrayLen; j++ {
				if m.prog.Mems[idx].Wide {
					m.memW[idx][j].CopyFrom(words[j])
				} else {
					m.mem64[idx][j] = words[j].Uint64() & mask(v.Width)
				}
			}
			continue
		}
		val, ok := st.Scalars[v.Name]
		if !ok {
			continue
		}
		slot := m.prog.VarSlot[v.Index]
		if m.wide[slot] != nil {
			m.wide[slot].CopyFrom(val)
		} else {
			m.u64[slot] = val.Uint64() & mask(v.Width)
		}
	}
	// State loads happen only between time steps: no sequential process
	// may be left triggered by the raw slot writes above.
	for i := range m.seqTrig {
		m.seqTrig[i] = false
	}
	m.seqPending = false
	m.combDirty = true
}

// exec runs compiled code starting at pc until OpHalt.
func (m *Machine) exec(pc int) {
	code := m.prog.Code
	for {
		op := &code[pc]
		m.Ops++
		if op.Wide {
			if m.execWide(op) {
				pc = op.Target
				continue
			}
			if op.Kind == OpHalt {
				return
			}
			pc++
			continue
		}
		switch op.Kind {
		case OpHalt:
			return
		case OpJump:
			pc = op.Target
			continue
		case OpJz:
			if m.u64[op.Srcs[0]] == 0 {
				pc = op.Target
				continue
			}
		case OpConst:
			m.u64[op.Dst] = op.Const.Uint64() & mask(op.Width)
		case OpMove:
			m.u64[op.Dst] = m.u64[op.Srcs[0]] & mask(op.Width)
		case OpAdd:
			m.u64[op.Dst] = (m.u64[op.Srcs[0]] + m.u64[op.Srcs[1]]) & mask(op.Width)
		case OpSub:
			m.u64[op.Dst] = (m.u64[op.Srcs[0]] - m.u64[op.Srcs[1]]) & mask(op.Width)
		case OpMul:
			m.u64[op.Dst] = (m.u64[op.Srcs[0]] * m.u64[op.Srcs[1]]) & mask(op.Width)
		case OpDiv:
			d := m.u64[op.Srcs[1]]
			if d == 0 {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = (m.u64[op.Srcs[0]] / d) & mask(op.Width)
			}
		case OpMod:
			d := m.u64[op.Srcs[1]]
			if d == 0 {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = (m.u64[op.Srcs[0]] % d) & mask(op.Width)
			}
		case OpPow:
			m.u64[op.Dst] = powMod(m.u64[op.Srcs[0]], m.u64[op.Srcs[1]]) & mask(op.Width)
		case OpAnd:
			m.u64[op.Dst] = m.u64[op.Srcs[0]] & m.u64[op.Srcs[1]]
		case OpOr:
			m.u64[op.Dst] = m.u64[op.Srcs[0]] | m.u64[op.Srcs[1]]
		case OpXor:
			m.u64[op.Dst] = m.u64[op.Srcs[0]] ^ m.u64[op.Srcs[1]]
		case OpXnor:
			m.u64[op.Dst] = ^(m.u64[op.Srcs[0]] ^ m.u64[op.Srcs[1]]) & mask(op.Width)
		case OpNot:
			m.u64[op.Dst] = ^m.u64[op.Srcs[0]] & mask(op.Width)
		case OpNeg:
			m.u64[op.Dst] = (-m.u64[op.Srcs[0]]) & mask(op.Width)
		case OpLogNot:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] == 0)
		case OpRedAnd:
			w := m.prog.Slots[op.Srcs[0]].Width
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] == mask(w))
		case OpRedOr:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] != 0)
		case OpRedXor:
			m.u64[op.Dst] = uint64(bits.OnesCount64(m.u64[op.Srcs[0]]) & 1)
		case OpRedNand:
			w := m.prog.Slots[op.Srcs[0]].Width
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] != mask(w))
		case OpRedNor:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] == 0)
		case OpRedXnor:
			m.u64[op.Dst] = uint64(^bits.OnesCount64(m.u64[op.Srcs[0]]) & 1)
		case OpEq:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] == m.u64[op.Srcs[1]])
		case OpNe:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] != m.u64[op.Srcs[1]])
		case OpLt:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] < m.u64[op.Srcs[1]])
		case OpLe:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] <= m.u64[op.Srcs[1]])
		case OpGt:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] > m.u64[op.Srcs[1]])
		case OpGe:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] >= m.u64[op.Srcs[1]])
		case OpLogAnd:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] != 0 && m.u64[op.Srcs[1]] != 0)
		case OpLogOr:
			m.u64[op.Dst] = b2u(m.u64[op.Srcs[0]] != 0 || m.u64[op.Srcs[1]] != 0)
		case OpShl:
			sh := m.u64[op.Srcs[1]]
			if sh >= 64 {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = (m.u64[op.Srcs[0]] << sh) & mask(op.Width)
			}
		case OpShr:
			sh := m.u64[op.Srcs[1]]
			if sh >= 64 {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = (m.u64[op.Srcs[0]] & mask(op.Width)) >> sh
			}
		case OpSlice:
			m.u64[op.Dst] = (m.u64[op.Srcs[0]] >> op.Lo) & mask(op.Width)
		case OpBitSel:
			idx := m.u64[op.Srcs[1]]
			if idx >= uint64(m.prog.Slots[op.Srcs[0]].Width) {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = (m.u64[op.Srcs[0]] >> idx) & 1
			}
		case OpConcat:
			var acc uint64
			for _, s := range op.Srcs {
				w := m.prog.Slots[s].Width
				acc = acc<<w | (m.u64[s] & mask(w))
			}
			m.u64[op.Dst] = acc & mask(op.Width)
		case OpRepl:
			w := m.prog.Slots[op.Srcs[0]].Width
			v := m.u64[op.Srcs[0]] & mask(w)
			var acc uint64
			for i := 0; i < op.N; i++ {
				acc = acc<<w | v
			}
			m.u64[op.Dst] = acc & mask(op.Width)
		case OpMux:
			if m.u64[op.Srcs[0]] != 0 {
				m.u64[op.Dst] = m.u64[op.Srcs[1]] & mask(op.Width)
			} else {
				m.u64[op.Dst] = m.u64[op.Srcs[2]] & mask(op.Width)
			}
		case OpTime:
			if m.NowFn != nil {
				m.u64[op.Dst] = m.NowFn()
			} else {
				m.u64[op.Dst] = 0
			}
		case OpMemRead:
			addr := m.u64[op.Srcs[0]]
			mi := m.prog.Mems[op.Aux]
			if addr >= uint64(mi.Words) {
				m.u64[op.Dst] = 0
			} else {
				m.u64[op.Dst] = m.mem64[op.Aux][addr]
			}
		case OpWrite:
			m.writeVarSlot(op.Dst, m.u64[op.Srcs[0]], nil, false)
		case OpWriteRng:
			cur := m.slotVecOwned(op.Dst)
			if cur.SetSlice(op.Hi, op.Lo, bv.FromUint64(op.Width, m.u64[op.Srcs[0]])) {
				m.writeVarSlot(op.Dst, cur.Uint64(), cur, false)
			}
		case OpWriteBit:
			idx := m.u64[op.Srcs[1]]
			if idx < uint64(m.prog.Slots[op.Dst].Width) {
				cur := m.u64[op.Dst]
				nv := cur&^(1<<idx) | (m.u64[op.Srcs[0]] & 1 << idx)
				m.writeVarSlot(op.Dst, nv, nil, false)
			}
		case OpMemWrite:
			mi := m.prog.Mems[op.Aux]
			addr := m.u64[op.Srcs[1]]
			if addr < uint64(mi.Words) {
				if m.mem64[op.Aux][addr] != m.u64[op.Srcs[0]]&mask(mi.Width) {
					m.mem64[op.Aux][addr] = m.u64[op.Srcs[0]] & mask(mi.Width)
					m.combDirty = true
					if m.ChangeHook != nil {
						m.ChangeHook(-1 - op.Aux)
					}
				}
			}
		case OpWriteNB:
			m.pending = append(m.pending, mPending{slot: op.Dst, u: m.u64[op.Srcs[0]]})
		case OpWriteRngNB:
			m.pending = append(m.pending, mPending{slot: op.Dst, hasRng: true, hi: op.Hi, lo: op.Lo, u: m.u64[op.Srcs[0]]})
		case OpWriteBitNB:
			idx := m.u64[op.Srcs[1]]
			if idx < uint64(m.prog.Slots[op.Dst].Width) {
				m.pending = append(m.pending, mPending{slot: op.Dst, hasRng: true, hi: int(idx), lo: int(idx), u: m.u64[op.Srcs[0]]})
			}
		case OpMemWriteNB:
			addr := m.u64[op.Srcs[1]]
			m.pending = append(m.pending, mPending{slot: -1, mem: op.Aux, word: int(addr), u: m.u64[op.Srcs[0]]})
		case OpDisplay:
			m.display(op)
		case OpFinish:
			m.finished = true
			m.events = append(m.events, DisplayEvent{Finish: true})
		}
		pc++
	}
}

// execWide handles instructions touching wide values using bit-vector
// arithmetic. It returns true if the op was a taken jump.
func (m *Machine) execWide(op *Op) bool {
	get := func(i int) *bv.Vector { return m.slotVec(op.Srcs[i]) }
	switch op.Kind {
	case OpHalt:
		return false
	case OpJump:
		return true
	case OpJz:
		return get(0).IsZero()
	case OpConst:
		m.setSlotRaw(op.Dst, op.Const)
	case OpMove:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width))
	case OpAdd:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Add(get(1).Resize(op.Width)))
	case OpSub:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Sub(get(1).Resize(op.Width)))
	case OpMul:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Mul(get(1).Resize(op.Width)))
	case OpDiv:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Div(get(1).Resize(op.Width)))
	case OpMod:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Mod(get(1).Resize(op.Width)))
	case OpPow:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Pow(get(1)))
	case OpAnd:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).And(get(1).Resize(op.Width)))
	case OpOr:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Or(get(1).Resize(op.Width)))
	case OpXor:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Xor(get(1).Resize(op.Width)))
	case OpXnor:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Xnor(get(1).Resize(op.Width)))
	case OpNot:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Not())
	case OpNeg:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Neg())
	case OpLogNot:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).IsZero()))
	case OpRedAnd:
		m.setSlotRaw(op.Dst, get(0).RedAnd())
	case OpRedOr:
		m.setSlotRaw(op.Dst, get(0).RedOr())
	case OpRedXor:
		m.setSlotRaw(op.Dst, get(0).RedXor())
	case OpRedNand:
		m.setSlotRaw(op.Dst, bv.FromBool(!get(0).RedAnd().Bool()))
	case OpRedNor:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).IsZero()))
	case OpRedXnor:
		m.setSlotRaw(op.Dst, bv.FromBool(!get(0).RedXor().Bool()))
	case OpEq:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Equal(get(1))))
	case OpNe:
		m.setSlotRaw(op.Dst, bv.FromBool(!get(0).Equal(get(1))))
	case OpLt:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Cmp(get(1)) < 0))
	case OpLe:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Cmp(get(1)) <= 0))
	case OpGt:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Cmp(get(1)) > 0))
	case OpGe:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Cmp(get(1)) >= 0))
	case OpLogAnd:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Bool() && get(1).Bool()))
	case OpLogOr:
		m.setSlotRaw(op.Dst, bv.FromBool(get(0).Bool() || get(1).Bool()))
	case OpShl:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Shl(get(1)))
	case OpShr:
		m.setSlotRaw(op.Dst, get(0).Resize(op.Width).Shr(get(1)))
	case OpSlice:
		m.setSlotRaw(op.Dst, get(0).Slice(op.Hi, op.Lo))
	case OpBitSel:
		v := get(0)
		idx := get(1)
		i := int(idx.Uint64())
		if !idx.Equal(bv.FromUint64(64, uint64(i))) || i >= v.Width() {
			m.setSlotRaw(op.Dst, bv.New(1))
		} else {
			m.setSlotRaw(op.Dst, bv.FromUint64(1, uint64(v.Bit(i))))
		}
	case OpConcat:
		acc := get(0).Clone()
		for i := 1; i < len(op.Srcs); i++ {
			acc = acc.Concat(get(i))
		}
		m.setSlotRaw(op.Dst, acc)
	case OpRepl:
		m.setSlotRaw(op.Dst, get(0).Repl(op.N))
	case OpMux:
		if get(0).Bool() {
			m.setSlotRaw(op.Dst, get(1).Resize(op.Width))
		} else {
			m.setSlotRaw(op.Dst, get(2).Resize(op.Width))
		}
	case OpTime:
		if m.NowFn != nil {
			m.setSlotRaw(op.Dst, bv.FromUint64(64, m.NowFn()))
		} else {
			m.setSlotRaw(op.Dst, bv.New(64))
		}
	case OpMemRead:
		mi := m.prog.Mems[op.Aux]
		idx := get(0)
		addr := int(idx.Uint64())
		if !idx.Equal(bv.FromUint64(64, uint64(addr))) || addr >= mi.Words {
			m.setSlotRaw(op.Dst, bv.New(mi.Width))
		} else if mi.Wide {
			m.setSlotRaw(op.Dst, m.memW[op.Aux][addr])
		} else {
			m.setSlotRaw(op.Dst, bv.FromUint64(mi.Width, m.mem64[op.Aux][addr]))
		}
	case OpWrite:
		m.writeVarSlot(op.Dst, 0, get(0).Resize(m.prog.Slots[op.Dst].Width), true)
	case OpWriteRng:
		cur := m.slotVecOwned(op.Dst)
		if cur.SetSlice(op.Hi, op.Lo, get(0)) {
			m.writeVarSlot(op.Dst, 0, cur, true)
		}
	case OpWriteBit:
		idx := get(1)
		i := int(idx.Uint64())
		if idx.Equal(bv.FromUint64(64, uint64(i))) && i < m.prog.Slots[op.Dst].Width {
			cur := m.slotVecOwned(op.Dst)
			if cur.SetSlice(i, i, get(0)) {
				m.writeVarSlot(op.Dst, 0, cur, true)
			}
		}
	case OpMemWrite:
		mi := m.prog.Mems[op.Aux]
		idx := get(1)
		addr := int(idx.Uint64())
		if idx.Equal(bv.FromUint64(64, uint64(addr))) && addr < mi.Words {
			val := get(0).Resize(mi.Width)
			if mi.Wide {
				if m.memW[op.Aux][addr].CopyFrom(val) {
					m.combDirty = true
					if m.ChangeHook != nil {
						m.ChangeHook(-1 - op.Aux)
					}
				}
			} else if m.mem64[op.Aux][addr] != val.Uint64() {
				m.mem64[op.Aux][addr] = val.Uint64()
				m.combDirty = true
				if m.ChangeHook != nil {
					m.ChangeHook(-1 - op.Aux)
				}
			}
		}
	case OpWriteNB:
		m.pending = append(m.pending, mPending{slot: op.Dst, w: get(0).Resize(m.prog.Slots[op.Dst].Width), wide: true})
	case OpWriteRngNB:
		m.pending = append(m.pending, mPending{slot: op.Dst, hasRng: true, hi: op.Hi, lo: op.Lo, w: get(0).Clone(), wide: true})
	case OpWriteBitNB:
		idx := get(1)
		i := int(idx.Uint64())
		if idx.Equal(bv.FromUint64(64, uint64(i))) && i < m.prog.Slots[op.Dst].Width {
			m.pending = append(m.pending, mPending{slot: op.Dst, hasRng: true, hi: i, lo: i, w: get(0).Clone(), wide: true})
		}
	case OpMemWriteNB:
		idx := get(1)
		addr := int(idx.Uint64())
		if !idx.Equal(bv.FromUint64(64, uint64(addr))) {
			addr = -1
		}
		m.pending = append(m.pending, mPending{slot: -1, mem: op.Aux, word: addr, w: get(0).Resize(m.prog.Mems[op.Aux].Width), wide: true})
	case OpDisplay:
		m.display(op)
	case OpFinish:
		m.finished = true
		m.events = append(m.events, DisplayEvent{Finish: true})
	}
	return false
}

func (m *Machine) display(op *Op) {
	task := m.prog.Tasks[op.Aux]
	vals := make([]*bv.Vector, len(op.Srcs))
	for i, s := range op.Srcs {
		vals[i] = m.slotVecOwned(s)
	}
	var text string
	if task.Src.Format == "" {
		for i, v := range vals {
			if i > 0 {
				text += " "
			}
			text += v.Dec()
		}
	} else {
		text = sim.FormatDisplay(task.Src.Format, vals, m.prog.Flat.Name)
	}
	m.events = append(m.events, DisplayEvent{
		Text:    text,
		Newline: task.Src.Kind != elab.TaskWrite,
	})
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// powMod computes x**y mod 2^64 by binary exponentiation.
func powMod(x, y uint64) uint64 {
	var r uint64 = 1
	for y > 0 {
		if y&1 != 0 {
			r *= x
		}
		x *= x
		y >>= 1
	}
	return r
}
