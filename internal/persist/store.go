package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store manages a persistence directory: numbered checkpoint files and
// the journal segments between them.
//
//	dir/
//	  ckpt-000001.ckpt   checkpoint payloads (checksummed containers,
//	  ckpt-000002.ckpt   written atomically)
//	  wal-000000.wal     records accepted before checkpoint 1
//	  wal-000001.wal     records between checkpoints 1 and 2
//	  wal-000002.wal     records after checkpoint 2 (active segment)
//
// Checkpoint N is written atomically, then the journal rotates to
// segment N (compaction: the records a checkpoint covers stop growing
// the active segment). Retention keeps the last Keep checkpoints plus
// every segment needed to roll any retained checkpoint forward, so a
// corrupted latest checkpoint falls back to the previous one and
// replays through the corrupted one's segment to the same position.
//
// Recovery picks the newest checkpoint that decodes and checksums
// clean, then replays every record with a higher sequence number from
// segment files at or above the checkpoint's index. Sequence numbers
// are absolute, so a crash between writing a checkpoint and rotating
// the journal is harmless — replay just skips the records the
// checkpoint already covers.
type Store struct {
	dir    string
	active *Journal
	// ckptIndex is the index of the newest on-disk checkpoint (0 when
	// none); the active segment always carries the same index.
	ckptIndex int
}

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
	walPrefix  = "wal-"
	walSuffix  = ".wal"
)

func (s *Store) ckptPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", ckptPrefix, n, ckptSuffix))
}

func (s *Store) walPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", walPrefix, n, walSuffix))
}

// RecoveredState is what Open found on disk: the newest checkpoint that
// verified clean (nil when starting fresh) and the journal records to
// replay on top of it, in order.
type RecoveredState struct {
	// Checkpoint is the raw checkpoint payload (a container the caller
	// decodes); nil when no valid checkpoint exists.
	Checkpoint []byte
	// CheckpointIndex is the checkpoint's file index (0 when none).
	CheckpointIndex int
	// CheckpointSeq is the last journal sequence number the checkpoint
	// covers, as reported by the caller's MetaSeq callback.
	CheckpointSeq uint64
	// Records is the journal suffix to replay: every verifiable record
	// with Seq > CheckpointSeq.
	Records []Record
	// CorruptCheckpoints lists checkpoint files that failed
	// verification and were skipped (surfaced so callers can report the
	// fallback).
	CorruptCheckpoints []string
}

// Empty reports whether the directory held no recoverable state at all.
func (r *RecoveredState) Empty() bool {
	return r.Checkpoint == nil && len(r.Records) == 0
}

// CheckpointDecoder verifies a checkpoint payload and extracts the last
// journal sequence number it covers. Returning an error marks the
// checkpoint corrupt, and recovery falls back to the previous one.
type CheckpointDecoder func(payload []byte) (lastSeq uint64, err error)

// Open opens (creating if needed) a persistence directory, scans it,
// and returns the store ready for appends plus whatever state survived.
// decode validates candidate checkpoints — newest first — and recovery
// falls back across corrupt ones rather than half-applying anything.
func Open(dir string, decode CheckpointDecoder) (*Store, *RecoveredState, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir}
	st := &RecoveredState{}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var ckpts, wals []int
	for _, e := range entries {
		if n, ok := parseIndexedName(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, n)
		}
		if n, ok := parseIndexedName(e.Name(), walPrefix, walSuffix); ok {
			wals = append(wals, n)
		}
	}
	sort.Ints(ckpts)
	sort.Ints(wals)

	// Newest checkpoint that verifies wins; corrupt ones are recorded
	// and skipped.
	maxIndex := 0
	if len(ckpts) > 0 {
		maxIndex = ckpts[len(ckpts)-1]
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		path := s.ckptPath(ckpts[i])
		payload, err := os.ReadFile(path)
		if err == nil {
			var seq uint64
			if seq, err = decode(payload); err == nil {
				st.Checkpoint = payload
				st.CheckpointIndex = ckpts[i]
				st.CheckpointSeq = seq
				break
			}
		}
		st.CorruptCheckpoints = append(st.CorruptCheckpoints, filepath.Base(path))
	}

	// Replay suffix: every record above the checkpoint's sequence
	// number, from all segments in index order. Sequence numbers are
	// absolute and increase across segments, so the filter alone is
	// correct — and it transparently handles a crash that wrote a
	// checkpoint but died before rotating the journal (the uncovered
	// records still sit in the previous segment).
	for _, n := range wals {
		recs, err := ReadJournal(s.walPath(n))
		if err != nil {
			return nil, nil, err
		}
		for _, r := range recs {
			if r.Seq <= st.CheckpointSeq {
				continue
			}
			st.Records = append(st.Records, r)
		}
	}
	// The suffix must be gapless from the checkpoint onward: a missing
	// or unreadable record orphans everything after it, so replay stops
	// at the first discontinuity rather than skipping over lost history.
	want := st.CheckpointSeq + 1
	for i, r := range st.Records {
		if r.Seq != want {
			st.Records = st.Records[:i]
			break
		}
		want++
	}

	// The active segment rides with the newest checkpoint file present
	// (even a corrupt one — its index keeps monotonicity simple).
	s.ckptIndex = maxIndex
	active, _, err := OpenJournal(s.walPath(maxIndex))
	if err != nil {
		return nil, nil, err
	}
	s.active = active
	return s, st, nil
}

// Append adds one record to the active journal segment.
func (s *Store) Append(seq uint64, kind byte, data []byte) error {
	return s.active.Append(seq, kind, data)
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error { return s.active.Sync() }

// LastSeq returns the newest durable sequence number in the active
// segment (0 when it is empty).
func (s *Store) LastSeq() uint64 { return s.active.LastSeq() }

// JournalBytes returns the active segment's size.
func (s *Store) JournalBytes() int64 { return s.active.Bytes() }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// WriteCheckpoint durably writes the next checkpoint and rotates the
// journal: the checkpoint file lands atomically, the active segment is
// synced and closed, a fresh segment opens, and checkpoints (plus the
// segments only they needed) older than keep are pruned.
func (s *Store) WriteCheckpoint(payload []byte, keep int) (int, error) {
	if keep < 1 {
		keep = 1
	}
	// Seal the active segment first: the checkpoint claims to cover its
	// records, so they must be durable before the checkpoint exists.
	if err := s.active.Sync(); err != nil {
		return 0, err
	}
	n := s.ckptIndex + 1
	if err := WriteFileAtomic(s.ckptPath(n), payload, 0o644); err != nil {
		return 0, err
	}
	if err := s.active.Close(); err != nil {
		return 0, err
	}
	active, _, err := OpenJournal(s.walPath(n))
	if err != nil {
		return 0, err
	}
	s.active = active
	s.ckptIndex = n

	// Prune beyond the retention horizon: keep checkpoints (n-keep, n]
	// and the segments at or above the oldest retained checkpoint's
	// index (those are the ones a fallback replay can still need) —
	// plus one extra segment, because a record appended concurrently
	// with a checkpoint write can land just before the rotation, in the
	// segment below the checkpoint's index.
	horizon := n - keep + 1
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return n, nil // pruning is best-effort
	}
	for _, e := range entries {
		if i, ok := parseIndexedName(e.Name(), ckptPrefix, ckptSuffix); ok && i < horizon {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
		if i, ok := parseIndexedName(e.Name(), walPrefix, walSuffix); ok && i < horizon-1 {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	syncDir(s.dir)
	return n, nil
}

// Close syncs and closes the active segment.
func (s *Store) Close() error {
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}
