// Package persist implements Cascade-Go's crash-safe persistence
// primitives: a versioned, checksummed section container (the snapshot
// and bitstream-cache file format), atomic file writes (temp file +
// fsync + rename), an append-only write-ahead journal whose records
// carry sequence numbers and CRCs (a torn tail is detected and
// truncated, never half-applied), and a checkpoint store that lays
// checkpoints and journal segments out in a directory so recovery can
// load the last good checkpoint and deterministically replay the
// journal suffix.
//
// The paper's §9 future-work section proposes using Cascade's ability to
// move programs between hardware and software mid-computation as the
// basis for virtual machine migration; SYNERGY (PAPERS.md) builds
// suspend/resume-to-disk on the same machinery. This package is the disk
// half of that story: nothing in it knows about the runtime — it deals
// in opaque payload bytes — so the container format is shared by
// checkpoints, :save snapshots, and the toolchain's on-disk bitstream
// cache.
package persist

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Section is one named, independently checksummed payload inside a
// container.
type Section struct {
	Name string
	Data []byte
}

// Container framing: a text header line carrying the magic and format
// version, then one length-delimited, CRC-tagged section per entry, then
// a trailer that seals the section count and a CRC over the section
// CRCs. Payload bytes are raw (length-delimited), so any content —
// including newlines or binary — frames safely, while the envelope stays
// inspectable with a pager.
//
//	#<magic> v<version>
//	#section <name> len=<n> crc=<crc32-hex>
//	<n raw payload bytes>
//	...
//	#end sections=<k> crc=<crc32-hex>

// EncodeContainer renders sections into a checksummed container.
func EncodeContainer(magic string, version int, secs []Section) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "#%s v%d\n", magic, version)
	seal := crc32.NewIEEE()
	for _, s := range secs {
		crc := crc32.ChecksumIEEE(s.Data)
		fmt.Fprintf(&buf, "#section %s len=%d crc=%08x\n", s.Name, len(s.Data), crc)
		buf.Write(s.Data)
		buf.WriteByte('\n')
		fmt.Fprintf(seal, "%s:%08x;", s.Name, crc)
	}
	fmt.Fprintf(&buf, "#end sections=%d crc=%08x\n", len(secs), seal.Sum32())
	return buf.Bytes()
}

// DecodeContainer parses and verifies a container, returning its format
// version and sections. Any framing violation, length mismatch, or CRC
// mismatch is an error: a torn or corrupted file is detected, never
// half-decoded.
func DecodeContainer(magic string, data []byte) (int, []Section, error) {
	head, rest, ok := bytes.Cut(data, []byte("\n"))
	if !ok {
		return 0, nil, fmt.Errorf("persist: truncated %s container", magic)
	}
	var version int
	if _, err := fmt.Sscanf(string(head), "#"+magic+" v%d", &version); err != nil ||
		!strings.HasPrefix(string(head), "#"+magic+" v") {
		return 0, nil, fmt.Errorf("persist: not a %s container", magic)
	}
	var secs []Section
	seal := crc32.NewIEEE()
	for {
		head, tail, ok := bytes.Cut(rest, []byte("\n"))
		if !ok {
			return 0, nil, fmt.Errorf("persist: %s container missing trailer", magic)
		}
		line := string(head)
		if strings.HasPrefix(line, "#end ") {
			var n int
			var crc uint32
			if _, err := fmt.Sscanf(line, "#end sections=%d crc=%08x", &n, &crc); err != nil {
				return 0, nil, fmt.Errorf("persist: %s container trailer: %v", magic, err)
			}
			if n != len(secs) {
				return 0, nil, fmt.Errorf("persist: %s container lists %d sections, found %d", magic, n, len(secs))
			}
			if crc != seal.Sum32() {
				return 0, nil, fmt.Errorf("persist: %s container seal mismatch", magic)
			}
			return version, secs, nil
		}
		var name string
		var n int
		var crc uint32
		if _, err := fmt.Sscanf(line, "#section %s len=%d crc=%08x", &name, &n, &crc); err != nil {
			return 0, nil, fmt.Errorf("persist: %s container section header %.40q: %v", magic, line, err)
		}
		if n < 0 || n+1 > len(tail) {
			return 0, nil, fmt.Errorf("persist: %s container section %s truncated", magic, name)
		}
		payload := tail[:n]
		if tail[n] != '\n' {
			return 0, nil, fmt.Errorf("persist: %s container section %s misframed", magic, name)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return 0, nil, fmt.Errorf("persist: %s container section %s corrupt (crc %08x, want %08x)", magic, name, got, crc)
		}
		secs = append(secs, Section{Name: name, Data: append([]byte(nil), payload...)})
		fmt.Fprintf(seal, "%s:%08x;", name, crc)
		rest = tail[n+1:]
	}
}

// FindSection returns the first section with the given name.
func FindSection(secs []Section, name string) ([]byte, bool) {
	for _, s := range secs {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, renames it over path, and fsyncs the directory.
// A crash at any point leaves either the previous file or the new one —
// never a torn mixture — and the temp file is cleaned up on error.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename is durable. Some platforms
// refuse to fsync directories; that is not fatal (the rename itself is
// still atomic, durability just rides the next metadata flush).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// parseIndexedName extracts the numeric index from names like
// "ckpt-000042.ckpt" given prefix "ckpt-" and suffix ".ckpt".
func parseIndexedName(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
