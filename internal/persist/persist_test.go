package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	secs := []Section{
		{Name: "meta", Data: []byte("steps=42\n")},
		{Name: "state:main.led", Data: []byte("val=8'hff\n")},
		{Name: "source", Data: []byte("wire x;\n#looks like a directive\nbinary\x00ok")},
		{Name: "empty", Data: nil},
	}
	blob := EncodeContainer("cascade-test", 3, secs)
	ver, got, err := DecodeContainer("cascade-test", blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ver != 3 {
		t.Fatalf("version = %d, want 3", ver)
	}
	if len(got) != len(secs) {
		t.Fatalf("sections = %d, want %d", len(got), len(secs))
	}
	for i := range secs {
		if got[i].Name != secs[i].Name || !bytes.Equal(got[i].Data, secs[i].Data) {
			t.Fatalf("section %d mismatch: %+v vs %+v", i, got[i], secs[i])
		}
	}
	if _, ok := FindSection(got, "state:main.led"); !ok {
		t.Fatal("FindSection missed a section")
	}
}

func TestContainerDetectsCorruption(t *testing.T) {
	blob := EncodeContainer("cascade-test", 1, []Section{
		{Name: "a", Data: []byte("payload-a")},
		{Name: "b", Data: []byte("payload-b")},
	})
	// Flipping any single payload byte must fail decoding.
	idx := bytes.Index(blob, []byte("payload-a"))
	for _, flip := range []int{idx, idx + 3, len(blob) - 2} {
		bad := append([]byte(nil), blob...)
		bad[flip] ^= 0x41
		if _, _, err := DecodeContainer("cascade-test", bad); err == nil {
			t.Fatalf("corruption at byte %d went undetected", flip)
		}
	}
	// Truncation at every length must fail (never half-decode).
	for n := 0; n < len(blob); n++ {
		if _, _, err := DecodeContainer("cascade-test", blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
	// Wrong magic.
	if _, _, err := DecodeContainer("other", blob); err == nil {
		t.Fatal("wrong magic went undetected")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "file.dat")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "second" {
		t.Fatalf("read back %q, %v", got, err)
	}
	// No temp litter.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory not clean: %v", entries)
	}
}

func TestJournalAppendReopenReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	for i := 1; i <= 5; i++ {
		if err := j.Append(uint64(i), byte(i%3), []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 5 || recs[4].Seq != 5 || string(recs[2].Data) != "rec-3" {
		t.Fatalf("replayed %d records, tail %+v", len(recs), recs)
	}
	if j2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d", j2.LastSeq())
	}
	// Appends continue after the replayed prefix.
	if err := j2.Append(6, 1, []byte("rec-6")); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(6, 1, []byte("dup")); err == nil {
		t.Fatal("sequence regression not rejected")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.wal")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Append(uint64(i), 1, []byte(strings.Repeat("x", 20))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	whole, _ := os.ReadFile(path)

	// Tear the file at every byte boundary inside the last record: reopen
	// must recover exactly the first two records and truncate the rest.
	recLen := len(whole) / 3
	for cut := 2*recLen + 1; cut < len(whole); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut=%d: recovered %d records, want 2", cut, len(recs))
		}
		st, _ := os.Stat(torn)
		if st.Size() != int64(2*recLen) {
			t.Fatalf("cut=%d: torn tail not truncated (size %d)", cut, st.Size())
		}
		// And the journal still accepts appends on the clean boundary.
		if err := j2.Append(3, 1, []byte("replacement")); err != nil {
			t.Fatal(err)
		}
		j2.Close()
	}

	// A corrupted byte mid-record cuts replay at the previous boundary.
	bad := append([]byte(nil), whole...)
	bad[recLen+recordHeaderLen+3] ^= 0xff
	badPath := filepath.Join(t.TempDir(), "bad.wal")
	os.WriteFile(badPath, bad, 0o644)
	j3, recs, err := OpenJournal(badPath)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if len(recs) != 1 {
		t.Fatalf("corrupt record: recovered %d records, want 1", len(recs))
	}
}

// storeDecoder treats the payload as "seq=<n>" text.
func storeDecoder(payload []byte) (uint64, error) {
	var seq uint64
	if _, err := fmt.Sscanf(string(payload), "seq=%d", &seq); err != nil {
		return 0, err
	}
	return seq, nil
}

func ckptPayload(seq uint64) []byte { return []byte(fmt.Sprintf("seq=%d", seq)) }

func TestStoreCheckpointRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s, st, err := Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Empty() {
		t.Fatal("fresh store not empty")
	}
	seq := uint64(0)
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			seq++
			if err := s.Append(seq, 1, []byte(fmt.Sprintf("r%d", seq))); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	appendN(4)
	if _, err := s.WriteCheckpoint(ckptPayload(seq), 2); err != nil {
		t.Fatal(err)
	}
	appendN(3)
	if _, err := s.WriteCheckpoint(ckptPayload(seq), 2); err != nil {
		t.Fatal(err)
	}
	appendN(2)
	s.Close()

	// Recovery: newest checkpoint (seq 7) + records 8..9.
	_, st, err = Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointSeq != 7 || len(st.Records) != 2 || st.Records[0].Seq != 8 {
		t.Fatalf("recovered ckptSeq=%d records=%+v", st.CheckpointSeq, st.Records)
	}

	// Corrupt the newest checkpoint: recovery falls back to the previous
	// one and replays through the corrupted one's segment to the same
	// position.
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if len(ckpts) != 2 {
		t.Fatalf("retention kept %d checkpoints, want 2: %v", len(ckpts), ckpts)
	}
	if err := os.WriteFile(ckpts[len(ckpts)-1], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err = Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointSeq != 4 {
		t.Fatalf("fallback checkpoint seq = %d, want 4", st.CheckpointSeq)
	}
	if len(st.Records) != 5 || st.Records[0].Seq != 5 || st.Records[4].Seq != 9 {
		t.Fatalf("fallback replay records = %+v", st.Records)
	}
	if len(st.CorruptCheckpoints) != 1 {
		t.Fatalf("corrupt checkpoints = %v", st.CorruptCheckpoints)
	}
}

func TestStoreRetentionPrunesOldSegments(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for ck := 0; ck < 5; ck++ {
		for i := 0; i < 2; i++ {
			seq++
			s.Append(seq, 1, []byte("r"))
		}
		if _, err := s.WriteCheckpoint(ckptPayload(seq), 2); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	ckpts, _ := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if len(ckpts) != 2 {
		t.Fatalf("kept %d checkpoints, want 2", len(ckpts))
	}
	if len(wals) != 3 {
		t.Fatalf("kept %d segments, want 3: %v", len(wals), wals)
	}
	// And the kept state still recovers to the newest position.
	_, st, err := Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointSeq != 10 || len(st.Records) != 0 {
		t.Fatalf("recovered ckptSeq=%d records=%d", st.CheckpointSeq, len(st.Records))
	}
}

func TestStoreCrashBetweenCheckpointAndRotation(t *testing.T) {
	// Simulate: checkpoint 1 written but the journal never rotated (the
	// process died in between). Records the checkpoint covers still sit
	// in wal-000000; recovery must skip them by sequence number.
	dir := t.TempDir()
	s, _, err := Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		s.Append(uint64(i), 1, []byte(fmt.Sprintf("r%d", i)))
	}
	s.Sync()
	s.Close()
	// Hand-write the checkpoint file exactly as WriteCheckpoint would,
	// without rotating.
	if err := WriteFileAtomic(filepath.Join(dir, "ckpt-000001.ckpt"), ckptPayload(4), 0o644); err != nil {
		t.Fatal(err)
	}
	_, st, err := Open(dir, storeDecoder)
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointSeq != 4 || len(st.Records) != 2 || st.Records[0].Seq != 5 {
		t.Fatalf("recovered ckptSeq=%d records=%+v", st.CheckpointSeq, st.Records)
	}
}
