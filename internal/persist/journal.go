package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Journal is one append-only write-ahead segment file. Every record
// carries an absolute sequence number, a kind byte, a length, and a CRC
// over all of it; appends go to the end of the file and a torn tail
// (a crash mid-write) is detected by the CRC or the length framing and
// truncated on reopen — a record is either durably, verifiably whole or
// it never happened.
//
// Record layout (little-endian):
//
//	magic  [2]byte "jr"
//	kind   uint8
//	_      uint8 (reserved, zero)
//	seq    uint64
//	len    uint32
//	data   [len]byte
//	crc    uint32  // CRC-32 (IEEE) over kind..data
type Journal struct {
	f       *os.File
	path    string
	lastSeq uint64
	count   int
	bytes   int64
	dirty   bool // appended since last Sync
}

// Record is one decoded journal record.
type Record struct {
	Seq  uint64
	Kind byte
	Data []byte
}

var journalMagic = [2]byte{'j', 'r'}

const recordHeaderLen = 2 + 1 + 1 + 8 + 4

// maxRecordLen bounds a single record; anything larger in a file is
// treated as corruption rather than attempted as one allocation.
const maxRecordLen = 1 << 28

// OpenJournal opens (creating if needed) a journal segment for
// appending. Existing records are scanned and verified; a torn or
// corrupt tail is truncated away. The valid prefix is returned so a
// recovering caller can replay it.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, goodLen, err := scanRecords(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Size() > goodLen {
		// Torn tail: drop it so the next append starts on a record
		// boundary.
		if err := f.Truncate(goodLen); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(goodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j := &Journal{f: f, path: path, count: len(recs), bytes: goodLen}
	if len(recs) > 0 {
		j.lastSeq = recs[len(recs)-1].Seq
	}
	return j, recs, nil
}

// ReadJournal decodes a segment file without opening it for writing; a
// torn tail is ignored (the valid prefix is returned). A missing file
// reads as empty.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := scanRecords(f)
	return recs, err
}

// scanRecords reads records from the start of f, stopping at the first
// framing or CRC violation; it returns the valid records and the byte
// length of the valid prefix.
func scanRecords(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var recs []Record
	var off int64
	hdr := make([]byte, recordHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean EOF or a partial header: the valid prefix ends here.
			return recs, off, nil
		}
		if hdr[0] != journalMagic[0] || hdr[1] != journalMagic[1] {
			return recs, off, nil
		}
		kind := hdr[2]
		seq := binary.LittleEndian.Uint64(hdr[4:12])
		n := binary.LittleEndian.Uint32(hdr[12:16])
		if n > maxRecordLen {
			return recs, off, nil
		}
		body := make([]byte, int(n)+4)
		if _, err := io.ReadFull(f, body); err != nil {
			return recs, off, nil
		}
		data, tag := body[:n], binary.LittleEndian.Uint32(body[n:])
		if recordCRC(kind, seq, data) != tag {
			return recs, off, nil
		}
		if len(recs) > 0 && seq <= recs[len(recs)-1].Seq {
			// Sequence numbers must strictly increase; a regression means
			// the file was spliced or corrupted in a CRC-colliding way.
			return recs, off, nil
		}
		recs = append(recs, Record{Seq: seq, Kind: kind, Data: data})
		off += int64(recordHeaderLen) + int64(n) + 4
	}
}

func recordCRC(kind byte, seq uint64, data []byte) uint32 {
	h := crc32.NewIEEE()
	var pre [12]byte
	pre[0] = kind
	binary.LittleEndian.PutUint64(pre[4:12], seq)
	h.Write(pre[:])
	h.Write(data)
	return h.Sum32()
}

// Append writes one record with the given sequence number. Sequence
// numbers must strictly increase across the journal's lifetime (they
// are absolute, surviving segment rotation). The write is buffered by
// the OS until Sync.
func (j *Journal) Append(seq uint64, kind byte, data []byte) error {
	if seq <= j.lastSeq && j.count > 0 {
		return fmt.Errorf("persist: journal sequence regressed: %d after %d", seq, j.lastSeq)
	}
	buf := make([]byte, recordHeaderLen+len(data)+4)
	buf[0], buf[1] = journalMagic[0], journalMagic[1]
	buf[2] = kind
	binary.LittleEndian.PutUint64(buf[4:12], seq)
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(data)))
	copy(buf[recordHeaderLen:], data)
	binary.LittleEndian.PutUint32(buf[recordHeaderLen+len(data):], recordCRC(kind, seq, data))
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.lastSeq = seq
	j.count++
	j.bytes += int64(len(buf))
	j.dirty = true
	return nil
}

// Sync flushes appended records to stable storage.
func (j *Journal) Sync() error {
	if !j.dirty {
		return nil
	}
	j.dirty = false
	return j.f.Sync()
}

// LastSeq returns the sequence number of the most recent record (0 when
// the journal is empty).
func (j *Journal) LastSeq() uint64 { return j.lastSeq }

// Len returns the number of valid records.
func (j *Journal) Len() int { return j.count }

// Bytes returns the byte size of the valid record prefix.
func (j *Journal) Bytes() int64 { return j.bytes }

// Path returns the segment's file path.
func (j *Journal) Path() string { return j.path }

// Close syncs and closes the segment.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
