package stdlib

import (
	"testing"

	"cascade/internal/bits"
	"cascade/internal/engine"
)

// step runs one scheduler time step against a set of engines, mimicking
// the runtime's batched loop.
func step(engines ...engine.Engine) {
	for {
		ran := false
		for _, e := range engines {
			if e.ThereAreEvals() {
				e.Evaluate()
				ran = true
			}
		}
		if ran {
			continue
		}
		any := false
		for _, e := range engines {
			if e.ThereAreUpdates() {
				e.Update()
				any = true
			}
		}
		if !any {
			break
		}
	}
	for _, e := range engines {
		e.EndStep()
	}
}

func drainVal(t *testing.T, e engine.Engine, name string) (uint64, bool) {
	t.Helper()
	for _, ev := range e.DrainWrites() {
		if ev.Var == name {
			return ev.Val.Uint64(), true
		}
	}
	return 0, false
}

func TestClockTogglesOncePerStep(t *testing.T) {
	c := NewClock("main.clk")
	c.DrainWrites() // initial broadcast
	want := uint64(1)
	for i := 0; i < 6; i++ {
		step(c)
		v, changed := drainVal(t, c, "val")
		if !changed || v != want {
			t.Fatalf("step %d: val=%d changed=%v, want %d", i, v, changed, want)
		}
		want ^= 1
	}
}

func TestClockUpdatesOnlyWhenArmed(t *testing.T) {
	c := NewClock("x")
	if !c.ThereAreUpdates() {
		t.Fatal("clock should start armed")
	}
	c.Update()
	if c.ThereAreUpdates() {
		t.Fatal("clock must disarm after update (one tick per step)")
	}
	c.Update() // must be a no-op
	if got := c.Val(); got != 1 {
		t.Fatalf("double update changed val twice: %d", got)
	}
	c.EndStep()
	if !c.ThereAreUpdates() {
		t.Fatal("end_step should re-arm the tick (paper §3.5)")
	}
}

func TestPadSamplesWorldBetweenSteps(t *testing.T) {
	w := NewWorld()
	p := NewPad("main.pad", 4, w)
	p.DrainWrites()
	w.PressPad("main.pad", 0b1010)
	if v, changed := drainVal(t, p, "val"); changed {
		t.Fatalf("pad changed mid-step: %d", v)
	}
	step(p)
	if v, changed := drainVal(t, p, "val"); !changed || v != 0b1010 {
		t.Fatalf("pad did not sample: %d %v", v, changed)
	}
}

func TestResetLine(t *testing.T) {
	w := NewWorld()
	r := NewReset("main.rst", w)
	r.DrainWrites()
	w.SetReset("main.rst", true)
	step(r)
	if v, changed := drainVal(t, r, "val"); !changed || v != 1 {
		t.Fatalf("reset not asserted: %d %v", v, changed)
	}
	w.SetReset("main.rst", false)
	step(r)
	if v, changed := drainVal(t, r, "val"); !changed || v != 0 {
		t.Fatalf("reset not deasserted: %d %v", v, changed)
	}
}

func TestLedVisibleImmediately(t *testing.T) {
	w := NewWorld()
	l := NewLed("main.led", 8, w)
	l.Read(engine.Event{Var: "val", Val: bits.FromUint64(8, 0xa5)})
	if got := w.Led("main.led"); got != 0xa5 {
		t.Fatalf("led side effect not immediate: %x", got)
	}
}

func TestLedTrace(t *testing.T) {
	w := NewWorld()
	w.TraceLeds = true
	l := NewLed("main.led", 8, w)
	for i := 1; i <= 3; i++ {
		l.Read(engine.Event{Var: "val", Val: bits.FromUint64(8, uint64(i))})
	}
	if len(w.LedTrace) != 3 || w.LedTrace[2] != 3 {
		t.Fatalf("trace wrong: %v", w.LedTrace)
	}
}

func TestMemorySampleThenCommit(t *testing.T) {
	m := NewMemory("main.mem", 4, 16)
	m.DrainWrites()
	// Drive a write and a read of the same address.
	m.Read(engine.Event{Var: "waddr", Val: bits.FromUint64(4, 3)})
	m.Read(engine.Event{Var: "wdata", Val: bits.FromUint64(16, 0xbeef)})
	m.Read(engine.Event{Var: "wen", Val: bits.FromUint64(1, 1)})
	m.Read(engine.Event{Var: "raddr", Val: bits.FromUint64(4, 3)})
	// Step 1 (rising edge): write sampled, not yet visible.
	step(m)
	if v, _ := drainVal(t, m, "rdata"); v == 0xbeef {
		t.Fatal("write visible in the same cycle (clock-to-Q violated)")
	}
	// Step 2 (falling edge): commit becomes visible.
	step(m)
	if v, changed := drainVal(t, m, "rdata"); !changed || v != 0xbeef {
		t.Fatalf("write not visible after commit: %x (%v)", v, changed)
	}
}

func TestMemoryOneWritePerTick(t *testing.T) {
	m := NewMemory("m", 2, 8)
	m.Read(engine.Event{Var: "wen", Val: bits.FromUint64(1, 1)})
	m.Read(engine.Event{Var: "waddr", Val: bits.FromUint64(2, 0)})
	m.Read(engine.Event{Var: "wdata", Val: bits.FromUint64(8, 7)})
	// Repeated Update calls within one step must not double-commit.
	if !m.ThereAreUpdates() {
		t.Fatal("no update pending")
	}
	m.Update()
	if m.ThereAreUpdates() {
		t.Fatal("second update in one step")
	}
}

func TestFIFOHostRoundTrip(t *testing.T) {
	w := NewWorld()
	f := NewFIFO("main.fifo", 8, 4, w)
	f.DrainWrites()
	w.Stream("main.fifo").Push(11, 22, 33)
	step(f) // refill happens at EndStep
	if v, changed := drainVal(t, f, "rdata"); !changed || v != 11 {
		t.Fatalf("head not presented: %d %v", v, changed)
	}
	if v, changed := drainVal(t, f, "empty"); changed && v != 0 {
		t.Fatalf("empty should be 0: %d", v)
	}
	// Pop: sampled at the next rising-edge-aligned step, applied at the
	// following falling-edge step (the refill step consumed one phase).
	f.Read(engine.Event{Var: "rreq", Val: bits.FromUint64(1, 1)})
	var rdata uint64
	for i := 0; i < 3; i++ {
		step(f)
		if v, changed := drainVal(t, f, "rdata"); changed {
			rdata = v
		}
	}
	if rdata != 22 {
		t.Fatalf("pop not applied: rdata=%d", rdata)
	}
	// Device-side push surfaces on the host stream.
	f.Read(engine.Event{Var: "rreq", Val: bits.FromUint64(1, 0)})
	f.Read(engine.Event{Var: "wreq", Val: bits.FromUint64(1, 1)})
	f.Read(engine.Event{Var: "wdata", Val: bits.FromUint64(8, 99)})
	step(f)
	step(f)
	step(f)
	out := w.Stream("main.fifo").TakeOutput()
	if len(out) == 0 || out[0] != 99 {
		t.Fatalf("push not delivered: %v", out)
	}
}

func TestFIFODepthBound(t *testing.T) {
	w := NewWorld()
	f := NewFIFO("f", 8, 2, w)
	w.Stream("f").Push(1, 2, 3, 4, 5)
	step(f)
	if f.Depth() != 2 {
		t.Fatalf("depth=%d, want 2 (back pressure)", f.Depth())
	}
	if v, _ := drainVal(t, f, "full"); v != 1 {
		t.Fatal("full not asserted at depth")
	}
	if got := w.Stream("f").PendingIn(); got != 3 {
		t.Fatalf("host backlog=%d, want 3", got)
	}
}

func TestFIFOTransfersDelta(t *testing.T) {
	w := NewWorld()
	f := NewFIFO("f", 8, 8, w)
	w.Stream("f").Push(1, 2, 3)
	step(f)
	if got := f.TransfersDelta(); got != 3 {
		t.Fatalf("transfers=%d, want 3", got)
	}
	if got := f.TransfersDelta(); got != 0 {
		t.Fatalf("delta should reset: %d", got)
	}
}

func TestStateRoundTripFIFO(t *testing.T) {
	w := NewWorld()
	f := NewFIFO("f", 8, 8, w)
	w.Stream("f").Push(5, 6, 7)
	step(f)
	st := f.GetState()
	f2 := NewFIFO("f", 8, 8, w)
	f2.SetState(st)
	if f2.Depth() != 3 {
		t.Fatalf("queue not restored: depth=%d", f2.Depth())
	}
	if v, _ := drainVal(t, f2, "rdata"); v != 5 {
		t.Fatalf("head not restored: %d", v)
	}
}

func TestStateRoundTripMemory(t *testing.T) {
	m := NewMemory("m", 3, 8)
	m.Read(engine.Event{Var: "wen", Val: bits.FromUint64(1, 1)})
	m.Read(engine.Event{Var: "waddr", Val: bits.FromUint64(3, 5)})
	m.Read(engine.Event{Var: "wdata", Val: bits.FromUint64(8, 0x42)})
	step(m)
	step(m)
	st := m.GetState()
	m2 := NewMemory("m", 3, 8)
	m2.SetState(st)
	m2.Read(engine.Event{Var: "raddr", Val: bits.FromUint64(3, 5)})
	m2.Evaluate()
	if v, _ := drainVal(t, m2, "rdata"); v != 0x42 {
		t.Fatalf("memory word not restored: %x", v)
	}
}

func TestFactory(t *testing.T) {
	w := NewWorld()
	for _, typ := range []string{"Clock", "Pad", "Led", "Reset", "Memory", "FIFO"} {
		e, err := New("p", typ, nil, w)
		if err != nil {
			t.Fatalf("New(%s): %v", typ, err)
		}
		if e.Loc() != engine.Hardware {
			t.Fatalf("%s: stdlib engines live in hardware", typ)
		}
	}
	if _, err := New("p", "Bogus", nil, w); err == nil {
		t.Fatal("unknown component should fail")
	}
}

func TestRegistryMatchesEngines(t *testing.T) {
	reg := Registry()
	w := NewWorld()
	for name, spec := range reg {
		params := map[string]*bits.Vector{}
		for _, p := range spec.Params {
			params[p.Name] = p.Default
		}
		if _, err := New("p", name, params, w); err != nil {
			t.Fatalf("registry entry %s has no engine: %v", name, err)
		}
		for _, port := range spec.Ports {
			if w := port.Width(params); w < 1 {
				t.Fatalf("%s.%s width %d", name, port.Name, w)
			}
		}
	}
}
