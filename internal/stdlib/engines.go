package stdlib

import (
	"fmt"

	"cascade/internal/bits"
	"cascade/internal/engine"
	"cascade/internal/sim"
)

// base provides the output-broadcast plumbing shared by all stdlib
// engines.
type base struct {
	path string
	outs map[string]*bits.Vector
	dirt map[string]bool
	ord  []string
}

func newBase(path string) base {
	return base{path: path, outs: map[string]*bits.Vector{}, dirt: map[string]bool{}}
}

func (b *base) addOut(name string, width int) {
	b.outs[name] = bits.New(width)
	b.dirt[name] = true // initial broadcast
	b.ord = append(b.ord, name)
}

func (b *base) setOut(name string, v *bits.Vector) {
	if b.outs[name].CopyFrom(v) {
		b.dirt[name] = true
	}
}

func (b *base) setOutU(name string, v uint64) {
	b.setOut(name, bits.FromUint64(b.outs[name].Width(), v))
}

// Name returns the engine's instance path.
func (b *base) Name() string { return b.path }

// Loc reports hardware: stdlib components are pre-compiled engines placed
// on the fabric as soon as they are instantiated (paper §4.3).
func (b *base) Loc() engine.Location { return engine.Hardware }

// DrainWrites emits changed outputs.
func (b *base) DrainWrites() []engine.Event {
	var evs []engine.Event
	for _, name := range b.ord {
		if b.dirt[name] {
			b.dirt[name] = false
			evs = append(evs, engine.Event{Var: name, Val: b.outs[name].Clone()})
		}
	}
	return evs
}

// Default no-op ABI pieces, overridden where needed.
func (b *base) Read(engine.Event)     {}
func (b *base) ThereAreEvals() bool   { return false }
func (b *base) Evaluate()             {}
func (b *base) ThereAreUpdates() bool { return false }
func (b *base) Update()               {}
func (b *base) EndStep()              {}
func (b *base) End()                  {}

func (b *base) GetState() *sim.State {
	st := &sim.State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	for name, v := range b.outs {
		st.Scalars[name] = v.Clone()
	}
	return st
}

func (b *base) SetState(st *sim.State) {
	for name, v := range st.Scalars {
		if cur, ok := b.outs[name]; ok {
			cur.CopyFrom(v)
			// A restored output must be re-broadcast: the consumers may
			// have seen a different value in the meantime.
			b.dirt[name] = true
		}
	}
}

// Clock is the standard global clock. It reports an update every
// scheduler iteration once armed; Update toggles val and EndStep re-arms
// the tick (paper §3.5). Two iterations therefore make one virtual tick.
type Clock struct {
	base
	armed bool
}

// NewClock returns a clock engine.
func NewClock(path string) *Clock {
	c := &Clock{base: newBase(path), armed: true}
	c.addOut("val", 1)
	return c
}

// ThereAreUpdates reports the armed tick.
func (c *Clock) ThereAreUpdates() bool { return c.armed }

// Update toggles the clock value.
func (c *Clock) Update() {
	if !c.armed {
		return
	}
	c.armed = false
	c.setOutU("val", c.outs["val"].Uint64()^1)
}

// EndStep re-queues the tick.
func (c *Clock) EndStep() { c.armed = true }

// Val returns the current clock value.
func (c *Clock) Val() uint64 { return c.outs["val"].Uint64() }

// Pad is a bank of N push buttons driven from the World.
type Pad struct {
	base
	world *World
	width int
}

// NewPad returns a pad engine of the given width.
func NewPad(path string, width int, w *World) *Pad {
	p := &Pad{base: newBase(path), world: w, width: width}
	p.addOut("val", width)
	return p
}

// EndStep samples the physical buttons between time steps.
func (p *Pad) EndStep() { p.setOutU("val", p.world.Pad(p.path)) }

// Reset is a one-bit reset line driven from the World.
type Reset struct {
	base
	world *World
}

// NewReset returns a reset engine.
func NewReset(path string, w *World) *Reset {
	r := &Reset{base: newBase(path), world: w}
	r.addOut("val", 1)
	return r
}

// EndStep samples the reset line.
func (r *Reset) EndStep() {
	v := uint64(0)
	if r.world.reset(r.path) {
		v = 1
	}
	r.setOutU("val", v)
}

// Led is a bank of N LEDs whose value is observable on the World.
type Led struct {
	base
	world *World
	val   *bits.Vector
}

// NewLed returns an LED engine of the given width.
func NewLed(path string, width int, w *World) *Led {
	l := &Led{base: newBase(path), world: w, val: bits.New(width)}
	return l
}

// Read drives the LED bank; the side effect is immediately visible.
func (l *Led) Read(ev engine.Event) {
	if ev.Var != "val" {
		return
	}
	if l.val.CopyFrom(ev.Val) {
		l.world.setLed(l.path, l.val)
	}
}

// GetState exposes the driven value.
func (l *Led) GetState() *sim.State {
	return &sim.State{Scalars: map[string]*bits.Vector{"val": l.val.Clone()}}
}

// SetState restores the driven value.
func (l *Led) SetState(st *sim.State) {
	if v, ok := st.Scalars["val"]; ok {
		l.val.CopyFrom(v)
		l.world.setLed(l.path, l.val)
	}
}

// GPIO is a general-purpose IO bank of N pins in each direction: the
// host drives `in` (sampled between time steps, like Pad) and the device
// drives `out` (visible immediately, like Led).
type GPIO struct {
	base
	world *World
	out   *bits.Vector
}

// NewGPIO returns a GPIO engine with N pins per direction.
func NewGPIO(path string, width int, w *World) *GPIO {
	g := &GPIO{base: newBase(path), world: w, out: bits.New(width)}
	g.addOut("in", width)
	return g
}

// Read drives the device-side output pins.
func (g *GPIO) Read(ev engine.Event) {
	if ev.Var != "out" {
		return
	}
	if g.out.CopyFrom(ev.Val) {
		g.world.setGPIO(g.path, g.out)
	}
}

// EndStep samples the host-driven input pins.
func (g *GPIO) EndStep() { g.setOutU("in", g.world.gpioInVal(g.path)) }

// GetState exposes both directions.
func (g *GPIO) GetState() *sim.State {
	st := g.base.GetState()
	st.Scalars["out"] = g.out.Clone()
	return st
}

// SetState restores both directions.
func (g *GPIO) SetState(st *sim.State) {
	g.base.SetState(st)
	if v, ok := st.Scalars["out"]; ok {
		g.out.CopyFrom(v)
		g.world.setGPIO(g.path, g.out)
	}
}

// Memory is a simple synchronous-write, combinational-read RAM:
// Memory#(A, W) has 2^A words of W bits. Writes commit once per virtual
// clock tick while wen is asserted, aligned with the global clock's
// rising edge.
type Memory struct {
	base
	abits, width int
	words        []*bits.Vector
	raddr, waddr uint64
	wdata        *bits.Vector
	wen          bool
	evalPending  bool
	phase        int  // EndStep parity (even = rising-edge steps)
	sampled      bool // a write was sampled at the last rising edge
	sWaddr       uint64
	sWdata       *bits.Vector
	latched      bool // per-step one-shot
}

// NewMemory returns a memory engine with 2^abits words of the given
// width.
func NewMemory(path string, abits, width int) *Memory {
	n := 1 << abits
	m := &Memory{base: newBase(path), abits: abits, width: width, wdata: bits.New(width)}
	m.words = make([]*bits.Vector, n)
	for i := range m.words {
		m.words[i] = bits.New(width)
	}
	m.addOut("rdata", width)
	return m
}

// Read accepts address/data/enable inputs.
func (m *Memory) Read(ev engine.Event) {
	switch ev.Var {
	case "raddr":
		m.raddr = ev.Val.Uint64()
		m.evalPending = true
	case "waddr":
		m.waddr = ev.Val.Uint64()
	case "wdata":
		m.wdata.CopyFrom(ev.Val)
	case "wen":
		m.wen = ev.Val.Bool()
	}
}

// ThereAreEvals reports a pending read-port refresh.
func (m *Memory) ThereAreEvals() bool { return m.evalPending }

// Evaluate refreshes the combinational read port.
func (m *Memory) Evaluate() {
	m.evalPending = false
	if int(m.raddr) < len(m.words) {
		m.setOut("rdata", m.words[m.raddr])
	} else {
		m.setOutU("rdata", 0)
	}
}

// ThereAreUpdates reports pending sequential work: sampling the write
// port at rising-edge steps, or committing a sampled write at the
// following falling-edge step. The commit is delayed half a cycle
// (clock-to-output), so logic clocked on the rising edge never observes
// a write racing the clock.
func (m *Memory) ThereAreUpdates() bool {
	if m.latched {
		return false
	}
	if m.phase%2 == 0 {
		return m.wen
	}
	return m.sampled
}

// Update samples (rising) or commits (falling) the write port.
func (m *Memory) Update() {
	if !m.ThereAreUpdates() {
		return
	}
	m.latched = true
	if m.phase%2 == 0 {
		m.sampled = true
		m.sWaddr = m.waddr
		m.sWdata = m.wdata.Clone()
		return
	}
	m.sampled = false
	if int(m.sWaddr) < len(m.words) {
		if m.words[m.sWaddr].CopyFrom(m.sWdata) && m.sWaddr == m.raddr {
			m.evalPending = true
		}
	}
}

// EndStep advances the tick-parity counter and re-arms the port.
func (m *Memory) EndStep() {
	m.phase++
	m.latched = false
}

// GetState snapshots the memory contents, ports, clock-phase parity,
// and any in-flight sampled write (so a migration between time steps is
// exact).
func (m *Memory) GetState() *sim.State {
	st := m.base.GetState()
	words := make([]*bits.Vector, len(m.words))
	for i, w := range m.words {
		words[i] = w.Clone()
	}
	st.Arrays = map[string][]*bits.Vector{"words": words}
	st.Scalars["raddr"] = bits.FromUint64(64, m.raddr)
	st.Scalars["_phase"] = bits.FromUint64(8, uint64(m.phase&1))
	if m.sampled {
		st.Scalars["_swaddr"] = bits.FromUint64(64, m.sWaddr)
		st.Scalars["_swdata"] = m.sWdata.Clone()
	}
	return st
}

// SetState restores memory contents and in-flight write state.
func (m *Memory) SetState(st *sim.State) {
	m.base.SetState(st)
	if words, ok := st.Arrays["words"]; ok {
		for i := 0; i < len(words) && i < len(m.words); i++ {
			m.words[i].CopyFrom(words[i])
		}
	}
	if v, ok := st.Scalars["raddr"]; ok {
		m.raddr = v.Uint64()
	}
	if v, ok := st.Scalars["_phase"]; ok {
		m.phase = int(v.Uint64()) & 1
	}
	m.sampled = false
	if v, ok := st.Scalars["_swaddr"]; ok {
		m.sampled = true
		m.sWaddr = v.Uint64()
		m.sWdata = st.Scalars["_swdata"].Clone().Resize(m.width)
	}
	m.evalPending = true
}

// FIFO is a host-connected queue: FIFO#(W, D) carries W-bit words with a
// device-side depth of D. The host pushes words through
// World.Stream(path); the device pops one word per virtual tick by
// asserting rreq, and can send words back by asserting wreq. full/empty
// provide back pressure (paper §7.1).
type FIFO struct {
	base
	width, depth int
	q            []*bits.Vector
	rreq, wreq   bool
	wdata        *bits.Vector
	phase        int
	latched      bool // per-step one-shot
	popSampled   bool
	pushSampled  *bits.Vector // captured wdata, nil if none
	world        *World
	transfers    uint64 // words moved across the host boundary
}

// NewFIFO returns a FIFO engine.
func NewFIFO(path string, width, depth int, w *World) *FIFO {
	f := &FIFO{base: newBase(path), width: width, depth: depth, wdata: bits.New(width), world: w}
	f.addOut("rdata", width)
	f.addOut("empty", 1)
	f.addOut("full", 1)
	f.setOutU("empty", 1)
	return f
}

// Read accepts pop/push requests from user logic.
func (f *FIFO) Read(ev engine.Event) {
	switch ev.Var {
	case "rreq":
		f.rreq = ev.Val.Bool()
	case "wdata":
		f.wdata.CopyFrom(ev.Val)
	case "wreq":
		f.wreq = ev.Val.Bool()
	}
}

// ThereAreUpdates reports pending sequential work: rising-edge steps
// sample the pop/push requests simultaneously with the consumer latching
// rdata; the following falling-edge step applies them, so rdata/empty
// never change in the same delta as the clock edge (clock-to-output
// delay). At most one word moves per clock tick in each direction.
func (f *FIFO) ThereAreUpdates() bool {
	if f.latched {
		return false
	}
	if f.phase%2 == 0 {
		return (f.rreq && len(f.q) > 0) || f.wreq
	}
	return f.popSampled || f.pushSampled != nil
}

// Update samples (rising) or applies (falling) one pop and/or push.
func (f *FIFO) Update() {
	if !f.ThereAreUpdates() {
		return
	}
	f.latched = true
	if f.phase%2 == 0 {
		f.popSampled = f.rreq && len(f.q) > 0
		if f.wreq {
			// wreq is a level: one word per tick while held high.
			f.pushSampled = f.wdata.Clone()
		}
		return
	}
	if f.popSampled && len(f.q) > 0 {
		f.q = f.q[1:]
		f.popSampled = false
	}
	if f.pushSampled != nil {
		f.world.Stream(f.path).put(f.pushSampled.Uint64())
		f.transfers++
		f.pushSampled = nil
	}
	f.refreshOutputs()
}

// EndStep refills from the host stream (respecting depth) and advances
// the parity counter.
func (f *FIFO) EndStep() {
	f.phase++
	f.latched = false
	if room := f.depth - len(f.q); room > 0 {
		for _, w := range f.world.Stream(f.path).take(room) {
			f.q = append(f.q, bits.FromUint64(f.width, w))
			f.transfers++
		}
	}
	f.refreshOutputs()
}

func (f *FIFO) refreshOutputs() {
	if len(f.q) > 0 {
		f.setOut("rdata", f.q[0])
		f.setOutU("empty", 0)
	} else {
		f.setOutU("empty", 1)
	}
	if len(f.q) >= f.depth {
		f.setOutU("full", 1)
	} else {
		f.setOutU("full", 0)
	}
}

// Depth returns the device-side queue length (tests).
func (f *FIFO) Depth() int { return len(f.q) }

// TransfersDelta returns host-boundary word transfers since the last
// call; the runtime bills them as bus transactions (each word crosses
// the memory-mapped bridge, §6.2).
func (f *FIFO) TransfersDelta() uint64 {
	d := f.transfers
	f.transfers = 0
	return d
}

// GetState snapshots the queue, the clock-phase parity, and any
// in-flight sampled pop/push, making between-step migrations exact.
func (f *FIFO) GetState() *sim.State {
	st := f.base.GetState()
	words := make([]*bits.Vector, len(f.q))
	for i, w := range f.q {
		words[i] = w.Clone()
	}
	st.Arrays = map[string][]*bits.Vector{"q": words}
	st.Scalars["_phase"] = bits.FromUint64(8, uint64(f.phase&1))
	if f.popSampled {
		st.Scalars["_pop"] = bits.FromUint64(1, 1)
	}
	if f.pushSampled != nil {
		st.Scalars["_push"] = f.pushSampled.Clone()
	}
	return st
}

// SetState restores the queue and in-flight state.
func (f *FIFO) SetState(st *sim.State) {
	f.base.SetState(st)
	if words, ok := st.Arrays["q"]; ok {
		f.q = nil
		for _, w := range words {
			f.q = append(f.q, w.Clone())
		}
	}
	if v, ok := st.Scalars["_phase"]; ok {
		f.phase = int(v.Uint64()) & 1
	}
	f.popSampled = false
	if v, ok := st.Scalars["_pop"]; ok && v.Bool() {
		f.popSampled = true
	}
	f.pushSampled = nil
	if v, ok := st.Scalars["_push"]; ok {
		f.pushSampled = v.Clone().Resize(f.width)
	}
	f.refreshOutputs()
}

// New constructs a stdlib engine by type name with resolved parameters.
func New(path, typ string, params map[string]*bits.Vector, w *World) (engine.Engine, error) {
	getInt := func(name string, dflt int) int {
		if v, ok := params[name]; ok {
			return int(v.Uint64())
		}
		return dflt
	}
	switch typ {
	case "Clock":
		return NewClock(path), nil
	case "Pad":
		return NewPad(path, getInt("N", 4), w), nil
	case "Led":
		return NewLed(path, getInt("N", 8), w), nil
	case "Reset":
		return NewReset(path, w), nil
	case "GPIO":
		return NewGPIO(path, getInt("N", 8), w), nil
	case "Memory":
		return NewMemory(path, getInt("A", 10), getInt("W", 32)), nil
	case "FIFO":
		return NewFIFO(path, getInt("W", 8), getInt("D", 256), w), nil
	}
	return nil, fmt.Errorf("stdlib: unknown component %s", typ)
}
