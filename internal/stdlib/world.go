// Package stdlib implements Cascade-Go's standard library (paper §3.2):
// Clock, Pad, Led, Reset, Memory, and FIFO. These modules are implicitly
// available to every program, instantiated like user modules
// (Pad#(4) pad()), and backed by pre-compiled engines that live in
// "hardware" from the moment they are instantiated — IO side effects are
// visible immediately, in any JIT compilation state.
//
// The physical buttons, LEDs, and host streams of the paper's testbed
// are replaced by a World: a thread-safe virtual peripheral board that
// tests, examples, and the REPL poke and observe.
package stdlib

import (
	"fmt"
	"sort"
	"sync"

	"cascade/internal/bits"
)

// World is the virtual peripheral board: the state outside the FPGA.
// Keys are subprogram instance paths (e.g. "main.pad").
type World struct {
	mu      sync.Mutex
	pads    map[string]uint64
	leds    map[string]*bits.Vector
	resets  map[string]bool
	gpioIn  map[string]uint64       // host-driven GPIO input pins
	gpioOut map[string]*bits.Vector // device-driven GPIO output pins
	streams map[string]*Stream

	// LedTrace records every LED value change when enabled (used by the
	// user-study harness to check expected behaviour).
	TraceLeds bool
	LedTrace  []uint64

	// recorder, when set, observes every committed host-side input
	// event (pad presses, reset lines, GPIO drives) before it is
	// applied — the write-ahead hook the persistence journal uses so a
	// recovering process can replay inputs in their original order.
	recorder InputRecorder
}

// InputRecorder observes host-driven input events. It is invoked under
// the world's lock, immediately before the event takes effect, so the
// record order matches the application order exactly.
type InputRecorder func(kind, path string, value uint64)

// Input-event kinds, as reported to an InputRecorder and accepted by
// ApplyInput.
const (
	InputPad   = "pad"
	InputReset = "reset"
	InputGPIO  = "gpio"
)

// SetInputRecorder installs (or, with nil, removes) the input hook.
func (w *World) SetInputRecorder(rec InputRecorder) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recorder = rec
}

// InputState is the value of one host-driven input surface.
type InputState struct {
	Kind  string
	Path  string
	Value uint64
}

// InputStates snapshots every host-driven input value in deterministic
// order (checkpoints store these so a recovered board matches the
// original one even after the journal records that set them are
// compacted away).
func (w *World) InputStates() []InputState {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []InputState
	for path, v := range w.pads {
		out = append(out, InputState{Kind: InputPad, Path: path, Value: v})
	}
	for path, b := range w.resets {
		v := uint64(0)
		if b {
			v = 1
		}
		out = append(out, InputState{Kind: InputReset, Path: path, Value: v})
	}
	for path, v := range w.gpioIn {
		out = append(out, InputState{Kind: InputGPIO, Path: path, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// ApplyInput sets one host-driven input without invoking the recorder —
// recovery uses it to replay journaled events and restore checkpointed
// input state without re-journaling them.
func (w *World) ApplyInput(kind, path string, value uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch kind {
	case InputPad:
		w.pads[path] = value
	case InputReset:
		w.resets[path] = value != 0
	case InputGPIO:
		w.gpioIn[path] = value
	default:
		return fmt.Errorf("stdlib: unknown input kind %q", kind)
	}
	return nil
}

// NewWorld returns an empty peripheral board.
func NewWorld() *World {
	return &World{
		pads:    map[string]uint64{},
		leds:    map[string]*bits.Vector{},
		resets:  map[string]bool{},
		gpioIn:  map[string]uint64{},
		gpioOut: map[string]*bits.Vector{},
		streams: map[string]*Stream{},
	}
}

// PressPad sets the buttons of the pad at path (bit i = button i down).
func (w *World) PressPad(path string, value uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recorder != nil {
		w.recorder(InputPad, path, value)
	}
	w.pads[path] = value
}

// Pad returns the current button state at path.
func (w *World) Pad(path string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pads[path]
}

// SetReset asserts or deasserts the reset line at path.
func (w *World) SetReset(path string, asserted bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recorder != nil {
		v := uint64(0)
		if asserted {
			v = 1
		}
		w.recorder(InputReset, path, v)
	}
	w.resets[path] = asserted
}

func (w *World) reset(path string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resets[path]
}

// Led returns the value currently driven onto the LED bank at path.
func (w *World) Led(path string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if v, ok := w.leds[path]; ok {
		return v.Uint64()
	}
	return 0
}

// LedVector returns a copy of the full LED value (wide banks).
func (w *World) LedVector(path string) *bits.Vector {
	w.mu.Lock()
	defer w.mu.Unlock()
	if v, ok := w.leds[path]; ok {
		return v.Clone()
	}
	return bits.New(1)
}

func (w *World) setLed(path string, v *bits.Vector) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.leds[path] = v.Clone()
	if w.TraceLeds {
		w.LedTrace = append(w.LedTrace, v.Uint64())
	}
}

// DriveGPIO sets the host-driven input pins of the GPIO bank at path.
func (w *World) DriveGPIO(path string, value uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.recorder != nil {
		w.recorder(InputGPIO, path, value)
	}
	w.gpioIn[path] = value
}

func (w *World) gpioInVal(path string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gpioIn[path]
}

// GPIO returns the device-driven output pins of the GPIO bank at path.
func (w *World) GPIO(path string) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if v, ok := w.gpioOut[path]; ok {
		return v.Uint64()
	}
	return 0
}

func (w *World) setGPIO(path string, v *bits.Vector) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.gpioOut[path] = v.Clone()
}

// Stream returns the host-side endpoint of the FIFO at path, creating it
// on first use.
func (w *World) Stream(path string) *Stream {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.streams[path]
	if !ok {
		s = &Stream{}
		w.streams[path] = s
	}
	return s
}

// Stream is the host side of a FIFO: an unbounded buffer in each
// direction. The device-side FIFO engine drains In (respecting its
// depth, which provides back pressure) and fills Out.
type Stream struct {
	mu  sync.Mutex
	in  []uint64
	out []uint64

	// Consumed counts words delivered into the device-side FIFO.
	Consumed uint64
}

// Push queues host-to-device words.
func (s *Stream) Push(words ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.in = append(s.in, words...)
}

// PushBytes queues host-to-device bytes.
func (s *Stream) PushBytes(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, x := range b {
		s.in = append(s.in, uint64(x))
	}
}

// PendingIn returns how many words remain queued toward the device.
func (s *Stream) PendingIn() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.in)
}

// take removes up to n words from the host-to-device queue.
func (s *Stream) take(n int) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.in) {
		n = len(s.in)
	}
	out := append([]uint64{}, s.in[:n]...)
	s.in = s.in[n:]
	s.Consumed += uint64(n)
	return out
}

// put appends device-to-host words.
func (s *Stream) put(words ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = append(s.out, words...)
}

// TakeOutput drains the device-to-host buffer.
func (s *Stream) TakeOutput() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.out
	s.out = nil
	return out
}
