package stdlib

import (
	"cascade/internal/bits"
	"cascade/internal/ir"
	"cascade/internal/verilog"
)

// Registry returns the IR-facing specs of every standard-library module:
// parameter defaults and port shapes. The runtime implicitly declares
// these types when it starts (paper §3.2); user code instantiates them
// like any module and the IR wires them to the pre-compiled engines
// built by New.
func Registry() ir.Registry {
	u32 := func(v uint64) *bits.Vector { return bits.FromUint64(32, v) }
	paramWidth := func(name string, dflt int) func(map[string]*bits.Vector) int {
		return func(p map[string]*bits.Vector) int {
			if v, ok := p[name]; ok {
				return int(v.Uint64())
			}
			return dflt
		}
	}
	fixed := func(w int) func(map[string]*bits.Vector) int {
		return func(map[string]*bits.Vector) int { return w }
	}
	pow2 := func(name string, dflt int) func(map[string]*bits.Vector) int {
		return func(p map[string]*bits.Vector) int {
			if v, ok := p[name]; ok {
				return int(v.Uint64())
			}
			return dflt
		}
	}
	return ir.Registry{
		"Clock": {
			Name:  "Clock",
			Ports: []ir.StdPort{{Name: "val", Dir: verilog.Output, Width: fixed(1)}},
		},
		"Pad": {
			Name:   "Pad",
			Params: []ir.StdParam{{Name: "N", Default: u32(4)}},
			Ports:  []ir.StdPort{{Name: "val", Dir: verilog.Output, Width: paramWidth("N", 4)}},
		},
		"Led": {
			Name:   "Led",
			Params: []ir.StdParam{{Name: "N", Default: u32(8)}},
			Ports:  []ir.StdPort{{Name: "val", Dir: verilog.Input, Width: paramWidth("N", 8)}},
		},
		"Reset": {
			Name:  "Reset",
			Ports: []ir.StdPort{{Name: "val", Dir: verilog.Output, Width: fixed(1)}},
		},
		"GPIO": {
			Name:   "GPIO",
			Params: []ir.StdParam{{Name: "N", Default: u32(8)}},
			Ports: []ir.StdPort{
				{Name: "in", Dir: verilog.Output, Width: paramWidth("N", 8)},
				{Name: "out", Dir: verilog.Input, Width: paramWidth("N", 8)},
			},
		},
		"Memory": {
			Name: "Memory",
			Params: []ir.StdParam{
				{Name: "A", Default: u32(10)},
				{Name: "W", Default: u32(32)},
			},
			Ports: []ir.StdPort{
				{Name: "raddr", Dir: verilog.Input, Width: pow2("A", 10)},
				{Name: "waddr", Dir: verilog.Input, Width: pow2("A", 10)},
				{Name: "wdata", Dir: verilog.Input, Width: paramWidth("W", 32)},
				{Name: "wen", Dir: verilog.Input, Width: fixed(1)},
				{Name: "rdata", Dir: verilog.Output, Width: paramWidth("W", 32)},
			},
		},
		"FIFO": {
			Name: "FIFO",
			Params: []ir.StdParam{
				{Name: "W", Default: u32(8)},
				{Name: "D", Default: u32(256)},
			},
			Ports: []ir.StdPort{
				{Name: "rdata", Dir: verilog.Output, Width: paramWidth("W", 8)},
				{Name: "empty", Dir: verilog.Output, Width: fixed(1)},
				{Name: "full", Dir: verilog.Output, Width: fixed(1)},
				{Name: "rreq", Dir: verilog.Input, Width: fixed(1)},
				{Name: "wdata", Dir: verilog.Input, Width: paramWidth("W", 8)},
				{Name: "wreq", Dir: verilog.Input, Width: fixed(1)},
			},
		},
	}
}
