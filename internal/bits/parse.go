package bits

import (
	"fmt"
	"math/big"
	"strings"
)

// DefaultLiteralWidth is the width assigned to unsized Verilog literals
// (the standard specifies "at least 32 bits").
const DefaultLiteralWidth = 32

// ParseLiteral parses a Verilog number literal such as 8'h80, 4'b10_10,
// 'd15, or a plain decimal like 42. Unsized literals get
// DefaultLiteralWidth. Underscores are ignored. x and z digits are not
// supported (two-state model).
func ParseLiteral(s string) (*Vector, error) {
	s = strings.ReplaceAll(s, "_", "")
	tick := strings.IndexByte(s, '\'')
	if tick < 0 {
		v, ok := new(big.Int).SetString(s, 10)
		if !ok || v.Sign() < 0 {
			return nil, fmt.Errorf("bits: malformed literal %q", s)
		}
		width := DefaultLiteralWidth
		if v.BitLen() > width {
			width = v.BitLen()
		}
		return FromBig(width, v), nil
	}

	width := DefaultLiteralWidth
	sized := tick > 0
	if sized {
		w, ok := new(big.Int).SetString(s[:tick], 10)
		if !ok || !w.IsInt64() || w.Int64() < 1 {
			return nil, fmt.Errorf("bits: malformed literal width in %q", s)
		}
		width = int(w.Int64())
	}
	rest := s[tick+1:]
	if rest == "" {
		return nil, fmt.Errorf("bits: malformed literal %q", s)
	}
	base := 10
	switch rest[0] {
	case 'h', 'H':
		base = 16
	case 'd', 'D':
		base = 10
	case 'o', 'O':
		base = 8
	case 'b', 'B':
		base = 2
	default:
		return nil, fmt.Errorf("bits: unknown base %q in literal %q", rest[0], s)
	}
	digits := rest[1:]
	if digits == "" {
		return nil, fmt.Errorf("bits: literal %q has no digits", s)
	}
	v, ok := new(big.Int).SetString(digits, base)
	if !ok || v.Sign() < 0 {
		return nil, fmt.Errorf("bits: malformed digits in literal %q", s)
	}
	return FromBig(width, v), nil
}

// ParseMaskedLiteral parses a binary literal that may contain ? wildcard
// digits (casez labels): it returns the value (wildcards as 0) and a care
// mask with 1s at the specified bit positions. Literals without
// wildcards return a nil mask.
func ParseMaskedLiteral(s string) (val, mask *Vector, err error) {
	if !strings.ContainsRune(s, '?') {
		v, err := ParseLiteral(s)
		return v, nil, err
	}
	clean := strings.ReplaceAll(s, "_", "")
	tick := strings.IndexByte(clean, '\'')
	if tick < 0 || tick+1 >= len(clean) || (clean[tick+1] != 'b' && clean[tick+1] != 'B') {
		return nil, nil, fmt.Errorf("bits: wildcard digits are only supported in binary literals: %q", s)
	}
	width := DefaultLiteralWidth
	if tick > 0 {
		w, ok := new(big.Int).SetString(clean[:tick], 10)
		if !ok || !w.IsInt64() || w.Int64() < 1 {
			return nil, nil, fmt.Errorf("bits: malformed literal width in %q", s)
		}
		width = int(w.Int64())
	}
	digits := clean[tick+2:]
	if digits == "" {
		return nil, nil, fmt.Errorf("bits: literal %q has no digits", s)
	}
	val = New(width)
	mask = New(width)
	for i := 0; i < len(digits); i++ {
		bit := len(digits) - 1 - i
		if bit >= width {
			continue
		}
		switch digits[i] {
		case '0':
			mask.SetBit(bit, 1)
		case '1':
			val.SetBit(bit, 1)
			mask.SetBit(bit, 1)
		case '?':
			// wildcard: value 0, mask 0
		default:
			return nil, nil, fmt.Errorf("bits: bad wildcard digit %q in %q", digits[i], s)
		}
	}
	// Bits above the written digits are specified zeros.
	for bit := len(digits); bit < width; bit++ {
		mask.SetBit(bit, 1)
	}
	return val, mask, nil
}

// MustParseLiteral is ParseLiteral for compile-time-constant inputs; it
// panics on error.
func MustParseLiteral(s string) *Vector {
	v, err := ParseLiteral(s)
	if err != nil {
		panic(err)
	}
	return v
}

// MinWidthFor returns the minimum number of bits needed to represent v
// (at least 1).
func MinWidthFor(v uint64) int {
	w := 0
	for v != 0 {
		w++
		v >>= 1
	}
	if w == 0 {
		return 1
	}
	return w
}
