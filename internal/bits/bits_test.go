package bits

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// refMask returns 2^width-1 as a big.Int.
func refMask(width int) *big.Int {
	return new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(width)), big.NewInt(1))
}

// randVec draws a random vector of random width in [1,130].
func randVec(r *rand.Rand) *Vector {
	width := 1 + r.Intn(130)
	v := New(width)
	for i := range v.words {
		v.words[i] = r.Uint64()
	}
	v.normalize()
	return v
}

func TestNewZeroAndWidthClamp(t *testing.T) {
	v := New(0)
	if v.Width() != 1 {
		t.Fatalf("width clamp: got %d, want 1", v.Width())
	}
	if !v.IsZero() {
		t.Fatal("New is not zero")
	}
	if New(-5).Width() != 1 {
		t.Fatal("negative width not clamped")
	}
}

func TestFromUint64Truncates(t *testing.T) {
	v := FromUint64(4, 0xff)
	if v.Uint64() != 0xf {
		t.Fatalf("truncation: got %x, want f", v.Uint64())
	}
}

func TestFromBigNegativeIsTwosComplement(t *testing.T) {
	v := FromBig(8, big.NewInt(-1))
	if v.Uint64() != 0xff {
		t.Fatalf("-1 at width 8: got %x, want ff", v.Uint64())
	}
	v = FromBig(8, big.NewInt(-2))
	if v.Uint64() != 0xfe {
		t.Fatalf("-2 at width 8: got %x, want fe", v.Uint64())
	}
}

func TestBitAndSetBit(t *testing.T) {
	v := New(70)
	v.SetBit(69, 1)
	if v.Bit(69) != 1 {
		t.Fatal("SetBit(69) not observed")
	}
	v.SetBit(69, 0)
	if !v.IsZero() {
		t.Fatal("clearing bit 69 did not zero vector")
	}
	v.SetBit(100, 1) // out of range: ignored
	if !v.IsZero() {
		t.Fatal("out-of-range SetBit mutated vector")
	}
	if v.Bit(-1) != 0 || v.Bit(70) != 0 {
		t.Fatal("out-of-range Bit should read 0")
	}
}

func TestCopyFromReportsChange(t *testing.T) {
	a := FromUint64(8, 5)
	b := FromUint64(8, 5)
	if a.CopyFrom(b) {
		t.Fatal("CopyFrom of equal value reported change")
	}
	if !a.CopyFrom(FromUint64(8, 6)) {
		t.Fatal("CopyFrom of new value did not report change")
	}
	if a.Uint64() != 6 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestCopyFromTruncates(t *testing.T) {
	a := New(4)
	a.CopyFrom(FromUint64(16, 0x1ff))
	if a.Uint64() != 0xf {
		t.Fatalf("got %x, want f", a.Uint64())
	}
}

func TestArithAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ops := []struct {
		name string
		vec  func(a, b *Vector) *Vector
		ref  func(x, y *big.Int) *big.Int
	}{
		{"add", (*Vector).Add, func(x, y *big.Int) *big.Int { return new(big.Int).Add(x, y) }},
		{"sub", (*Vector).Sub, func(x, y *big.Int) *big.Int { return new(big.Int).Sub(x, y) }},
		{"mul", (*Vector).Mul, func(x, y *big.Int) *big.Int { return new(big.Int).Mul(x, y) }},
		{"and", (*Vector).And, func(x, y *big.Int) *big.Int { return new(big.Int).And(x, y) }},
		{"or", (*Vector).Or, func(x, y *big.Int) *big.Int { return new(big.Int).Or(x, y) }},
		{"xor", (*Vector).Xor, func(x, y *big.Int) *big.Int { return new(big.Int).Xor(x, y) }},
	}
	for _, op := range ops {
		for i := 0; i < 300; i++ {
			a, b := randVec(r), randVec(r)
			got := op.vec(a, b)
			w := got.Width()
			want := new(big.Int).And(op.ref(a.Big(), b.Big()), refMask(w))
			if got.Big().Cmp(want) != 0 {
				t.Fatalf("%s(%v,%v): got %v, want %v", op.name, a, b, got.Big(), want)
			}
			if wa, wb := a.Width(), b.Width(); w != max(wa, wb) {
				t.Fatalf("%s width: got %d, want %d", op.name, w, max(wa, wb))
			}
		}
	}
}

func TestDivModAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := randVec(r), randVec(r)
		if b.IsZero() {
			continue
		}
		q, m := a.Div(b), a.Mod(b)
		wantQ := new(big.Int).And(new(big.Int).Div(a.Big(), b.Big()), refMask(q.Width()))
		wantM := new(big.Int).And(new(big.Int).Mod(a.Big(), b.Big()), refMask(m.Width()))
		if q.Big().Cmp(wantQ) != 0 {
			t.Fatalf("div(%v,%v): got %v, want %v", a, b, q.Big(), wantQ)
		}
		if m.Big().Cmp(wantM) != 0 {
			t.Fatalf("mod(%v,%v): got %v, want %v", a, b, m.Big(), wantM)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	a := FromUint64(8, 42)
	z := New(8)
	if !a.Div(z).IsZero() || !a.Mod(z).IsZero() {
		t.Fatal("div/mod by zero should yield zero in the 2-state model")
	}
}

func TestPow(t *testing.T) {
	a := FromUint64(16, 3)
	if got := a.Pow(FromUint64(8, 5)).Uint64(); got != 243 {
		t.Fatalf("3**5: got %d, want 243", got)
	}
	if got := a.Pow(New(4)).Uint64(); got != 1 {
		t.Fatalf("3**0: got %d, want 1", got)
	}
	// Truncation at width.
	b := FromUint64(4, 2)
	if got := b.Pow(FromUint64(8, 10)).Uint64(); got != (1024 & 0xf) {
		t.Fatalf("2**10 at width 4: got %d, want %d", got, 1024&0xf)
	}
}

func TestShiftAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a := randVec(r)
		n := r.Intn(a.Width() + 10)
		sh := FromUint64(32, uint64(n))
		gotL := a.Shl(sh)
		wantL := new(big.Int).And(new(big.Int).Lsh(a.Big(), uint(n)), refMask(a.Width()))
		if gotL.Big().Cmp(wantL) != 0 {
			t.Fatalf("shl(%v,%d): got %v, want %v", a, n, gotL.Big(), wantL)
		}
		gotR := a.Shr(sh)
		wantR := new(big.Int).Rsh(a.Big(), uint(n))
		if gotR.Big().Cmp(wantR) != 0 {
			t.Fatalf("shr(%v,%d): got %v, want %v", a, n, gotR.Big(), wantR)
		}
	}
}

func TestShiftHugeAmount(t *testing.T) {
	a := FromUint64(8, 0xff)
	huge := FromUint64(128, 0).Clone()
	huge.SetBit(100, 1)
	if !a.Shl(huge).IsZero() || !a.Shr(huge).IsZero() {
		t.Fatal("shift by >64-bit amount should flush to zero")
	}
}

func TestNotAndReductions(t *testing.T) {
	a := FromUint64(4, 0b1010)
	if got := a.Not().Uint64(); got != 0b0101 {
		t.Fatalf("not: got %b", got)
	}
	if a.RedAnd().Bool() {
		t.Fatal("redand of 1010 should be 0")
	}
	if !FromUint64(4, 0xf).RedAnd().Bool() {
		t.Fatal("redand of 1111 should be 1")
	}
	if !a.RedOr().Bool() || New(4).RedOr().Bool() {
		t.Fatal("redor wrong")
	}
	if a.RedXor().Bool() { // two ones -> parity 0
		t.Fatal("redxor of 1010 should be 0")
	}
	if !FromUint64(4, 0b1000).RedXor().Bool() {
		t.Fatal("redxor of 1000 should be 1")
	}
}

func TestRedAndWide(t *testing.T) {
	v := New(70)
	for i := 0; i < 70; i++ {
		v.SetBit(i, 1)
	}
	if !v.RedAnd().Bool() {
		t.Fatal("redand of all-ones 70-bit should be 1")
	}
	v.SetBit(69, 0)
	if v.RedAnd().Bool() {
		t.Fatal("redand with one zero bit should be 0")
	}
}

func TestXnor(t *testing.T) {
	a := FromUint64(4, 0b1100)
	b := FromUint64(4, 0b1010)
	if got := a.Xnor(b).Uint64(); got != 0b1001 {
		t.Fatalf("xnor: got %04b, want 1001", got)
	}
}

func TestSliceAndConcat(t *testing.T) {
	a := FromUint64(8, 0b1011_0110)
	s := a.Slice(5, 2)
	if s.Width() != 4 || s.Uint64() != 0b1101 {
		t.Fatalf("slice[5:2]: got %d'%04b", s.Width(), s.Uint64())
	}
	c := FromUint64(4, 0xa).Concat(FromUint64(4, 0x5))
	if c.Width() != 8 || c.Uint64() != 0xa5 {
		t.Fatalf("concat: got %d'%02x", c.Width(), c.Uint64())
	}
	if a.Slice(1, 3).Width() != 1 {
		t.Fatal("inverted slice should be 1-bit")
	}
}

func TestSetSlice(t *testing.T) {
	a := New(8)
	if !a.SetSlice(5, 2, FromUint64(4, 0xf)) {
		t.Fatal("SetSlice did not report change")
	}
	if a.Uint64() != 0b0011_1100 {
		t.Fatalf("SetSlice: got %08b", a.Uint64())
	}
	if a.SetSlice(5, 2, FromUint64(4, 0xf)) {
		t.Fatal("idempotent SetSlice reported change")
	}
	// Clipped high bound.
	b := New(4)
	b.SetSlice(10, 2, FromUint64(9, 0x1ff))
	if b.Uint64() != 0b1100 {
		t.Fatalf("clipped SetSlice: got %04b", b.Uint64())
	}
}

func TestRepl(t *testing.T) {
	a := FromUint64(2, 0b10)
	r := a.Repl(3)
	if r.Width() != 6 || r.Uint64() != 0b101010 {
		t.Fatalf("repl: got %d'%06b", r.Width(), r.Uint64())
	}
	if a.Repl(0).Width() != 1 {
		t.Fatal("repl(0) should clamp to 1-bit zero")
	}
}

func TestCmpAcrossWidths(t *testing.T) {
	a := FromUint64(8, 200)
	b := FromUint64(100, 200)
	if a.Cmp(b) != 0 || !a.Equal(b) {
		t.Fatal("equal values at different widths should compare equal")
	}
	c := New(100)
	c.SetBit(90, 1)
	if a.Cmp(c) != -1 || c.Cmp(a) != 1 {
		t.Fatal("wide comparison wrong")
	}
}

func TestFormatting(t *testing.T) {
	v := MustParseLiteral("8'h80")
	if v.String() != "8'h80" {
		t.Fatalf("String: %s", v.String())
	}
	if v.Bin() != "10000000" {
		t.Fatalf("Bin: %s", v.Bin())
	}
	if v.Dec() != "128" {
		t.Fatalf("Dec: %s", v.Dec())
	}
	if v.Oct() != "200" {
		t.Fatalf("Oct: %s", v.Oct())
	}
	if MustParseLiteral("12'habc").Hex() != "abc" {
		t.Fatal("hex digits wrong")
	}
	// Width not a multiple of 4 still formats the right digit count.
	if got := FromUint64(9, 0x1ff).Hex(); got != "1ff" {
		t.Fatalf("9-bit hex: %s", got)
	}
}

func TestParseLiteral(t *testing.T) {
	cases := []struct {
		in    string
		width int
		val   uint64
	}{
		{"8'h80", 8, 0x80},
		{"4'b1010", 4, 0b1010},
		{"4'b10_10", 4, 0b1010},
		{"12'd15", 12, 15},
		{"8'o17", 8, 0o17},
		{"'h4", 32, 4},
		{"42", 32, 42},
		{"3'd9", 3, 1}, // truncation to width
		{"1'b1", 1, 1},
	}
	for _, c := range cases {
		v, err := ParseLiteral(c.in)
		if err != nil {
			t.Fatalf("ParseLiteral(%q): %v", c.in, err)
		}
		if v.Width() != c.width || v.Uint64() != c.val {
			t.Fatalf("ParseLiteral(%q): got %d'%x, want %d'%x", c.in, v.Width(), v.Uint64(), c.width, c.val)
		}
	}
}

func TestParseLiteralErrors(t *testing.T) {
	for _, in := range []string{"", "8'", "8'q10", "8'hxz", "abc", "0'h0", "8'h", "-3"} {
		if _, err := ParseLiteral(in); err == nil {
			t.Fatalf("ParseLiteral(%q): expected error", in)
		}
	}
}

func TestParseLiteralWideDecimal(t *testing.T) {
	v, err := ParseLiteral("18446744073709551616") // 2^64
	if err != nil {
		t.Fatal(err)
	}
	if v.Width() != 65 {
		t.Fatalf("width widened to %d, want 65", v.Width())
	}
	if v.Bit(64) != 1 || v.Uint64() != 0 {
		t.Fatal("2^64 value wrong")
	}
}

func TestMinWidthFor(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for v, w := range cases {
		if got := MinWidthFor(v); got != w {
			t.Fatalf("MinWidthFor(%d): got %d, want %d", v, got, w)
		}
	}
}

// Property: Add is the big.Int sum mod 2^w for all widths (testing/quick).
func TestQuickAddMatchesBig(t *testing.T) {
	f := func(x, y uint64, wSeed uint8) bool {
		w := 1 + int(wSeed)%100
		a, b := FromUint64(w, x), FromUint64(w, y)
		want := new(big.Int).And(new(big.Int).Add(a.Big(), b.Big()), refMask(w))
		return a.Add(b).Big().Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Sub(Add(a,b),b) == a (round trip at equal width).
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(x, y uint64, wSeed uint8) bool {
		w := 1 + int(wSeed)%100
		a, b := FromUint64(w, x), FromUint64(w, y)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Not is an involution and Neg(a) == Not(a)+1.
func TestQuickNotNeg(t *testing.T) {
	f := func(x uint64, wSeed uint8) bool {
		w := 1 + int(wSeed)%100
		a := FromUint64(w, x)
		if !a.Not().Not().Equal(a) {
			return false
		}
		return a.Neg().Equal(a.Not().Add(FromUint64(w, 1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: concat then slice recovers both halves.
func TestQuickConcatSlice(t *testing.T) {
	f := func(x, y uint64, wa, wb uint8) bool {
		a := FromUint64(1+int(wa)%60, x)
		b := FromUint64(1+int(wb)%60, y)
		c := a.Concat(b)
		hi := c.Slice(c.Width()-1, b.Width())
		lo := c.Slice(b.Width()-1, 0)
		return hi.Equal(a) && lo.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: shifting left then right by the same in-range amount masks the
// top n bits.
func TestQuickShiftRoundTrip(t *testing.T) {
	f := func(x uint64, wSeed, nSeed uint8) bool {
		w := 2 + int(wSeed)%100
		n := int(nSeed) % w
		a := FromUint64(w, x)
		got := a.ShlUint(n).ShrUint(n)
		want := a.Slice(w-1-n, 0).Resize(w)
		return got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd128(b *testing.B) {
	x := FromUint64(128, 0xdeadbeefcafebabe)
	y := FromUint64(128, 0x0123456789abcdef)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkCopyFrom128(b *testing.B) {
	x := FromUint64(128, 0xdeadbeefcafebabe)
	y := New(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		y.CopyFrom(x)
	}
}

func TestCopyFromMasksDenormalizedSource(t *testing.T) {
	// A source vector that violates the normalization invariant (junk
	// above its semantic width) must still copy at its semantic width:
	// the junk may not leak into a wider destination.
	src := New(40)
	src.words[0] = ^uint64(0) // bits [40,64) are junk under the invariant
	dst := New(100)
	dst.CopyFrom(src)
	want := (uint64(1) << 40) - 1
	if dst.words[0] != want {
		t.Fatalf("CopyFrom leaked junk above source width: got %#x, want %#x", dst.words[0], want)
	}
	if dst.words[1] != 0 {
		t.Fatalf("CopyFrom dirtied high destination word: %#x", dst.words[1])
	}

	// Multi-word source with a dirty top word into an even wider dest.
	src2 := New(70)
	src2.words[0] = 0xdeadbeefcafef00d
	src2.words[1] = ^uint64(0) // only 6 bits are semantic
	dst2 := New(200)
	dst2.CopyFrom(src2)
	if dst2.words[1] != (uint64(1)<<6)-1 {
		t.Fatalf("CopyFrom leaked junk in top source word: %#x", dst2.words[1])
	}
}

func TestSetUint64InPlace(t *testing.T) {
	v := New(40)
	if !v.SetUint64(^uint64(0)) {
		t.Fatal("SetUint64: change not reported")
	}
	if got, want := v.Uint64(), (uint64(1)<<40)-1; got != want {
		t.Fatalf("SetUint64 truncation: got %#x, want %#x", got, want)
	}
	if v.SetUint64(^uint64(0)) {
		t.Fatal("SetUint64: spurious change reported")
	}
	// Wide vector: high words must be cleared and counted as a change.
	w := New(130)
	w.words[1] = 7
	w.words[2] = 1
	if !w.SetUint64(5) {
		t.Fatal("SetUint64 wide: change not reported")
	}
	for i := 1; i < len(w.words); i++ {
		if w.words[i] != 0 {
			t.Fatalf("SetUint64 wide: word %d not cleared: %#x", i, w.words[i])
		}
	}
	if w.Uint64() != 5 {
		t.Fatalf("SetUint64 wide: got %d, want 5", w.Uint64())
	}
	if n := testing.AllocsPerRun(100, func() { w.SetUint64(9) }); n != 0 {
		t.Fatalf("SetUint64 allocates: %v allocs/op", n)
	}
}
