// Package bits implements arbitrary-width two-state (0/1) bit vectors with
// the full set of Verilog operators needed by the Cascade simulator,
// synthesizer, and compiled netlist evaluator.
//
// Values are unsigned; all operators follow Verilog's unsigned semantics
// truncated to the result width. The four-state (x/z) extension of the IEEE
// standard is intentionally not modeled (see DESIGN.md). Division and
// modulus by zero yield zero where real Verilog would yield x.
//
// A Vector's unused high bits are always kept zero (the normalization
// invariant), so word-level comparisons and hashing are well defined.
package bits

import (
	"fmt"
	"math/big"
	"strings"
)

// WordBits is the number of bits stored per machine word.
const WordBits = 64

// Vector is an unsigned bit vector of fixed width. The zero value is an
// unusable zero-width vector; use New or one of the From constructors.
type Vector struct {
	width int
	words []uint64
}

func wordsFor(width int) int {
	if width <= 0 {
		return 0
	}
	return (width + WordBits - 1) / WordBits
}

// New returns a zero-valued vector of the given width. Widths below 1 are
// clamped to 1 so callers never construct degenerate vectors.
func New(width int) *Vector {
	if width < 1 {
		width = 1
	}
	return &Vector{width: width, words: make([]uint64, wordsFor(width))}
}

// FromUint64 returns a vector of the given width holding v truncated to
// that width.
func FromUint64(width int, v uint64) *Vector {
	b := New(width)
	b.words[0] = v
	b.normalize()
	return b
}

// FromBig returns a vector of the given width holding |v| truncated to that
// width. Negative values are interpreted as their two's complement at the
// target width, matching Verilog's treatment of negative decimal literals.
func FromBig(width int, v *big.Int) *Vector {
	b := New(width)
	x := new(big.Int).Set(v)
	if x.Sign() < 0 {
		mod := new(big.Int).Lsh(big.NewInt(1), uint(b.width))
		x.Mod(x, mod)
		if x.Sign() < 0 {
			x.Add(x, mod)
		}
	}
	for i := range b.words {
		b.words[i] = x.Uint64()
		x.Rsh(x, WordBits)
	}
	b.normalize()
	return b
}

// FromBool returns a 1-bit vector holding 1 if v is true.
func FromBool(v bool) *Vector {
	if v {
		return FromUint64(1, 1)
	}
	return New(1)
}

// Width reports the vector's width in bits.
func (b *Vector) Width() int { return b.width }

// Words exposes the underlying word storage (least significant first).
// Callers must not mutate the returned slice.
func (b *Vector) Words() []uint64 { return b.words }

// normalize zeroes the unused high bits of the top word.
func (b *Vector) normalize() {
	if rem := b.width % WordBits; rem != 0 {
		b.words[len(b.words)-1] &= (uint64(1) << rem) - 1
	}
}

// Clone returns an independent copy of b.
func (b *Vector) Clone() *Vector {
	c := &Vector{width: b.width, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b in place with v truncated or zero-extended to b's
// width. It never allocates and reports whether b's value changed.
//
// The source is read at its *semantic* width: bits of v's top storage word
// above v.Width() are masked off rather than trusted to be zero, so a
// source that violates the normalization invariant (e.g. a snapshot vector
// produced by a different engine tier) cannot leak junk into a wider
// destination.
func (b *Vector) CopyFrom(v *Vector) bool {
	changed := false
	vTop, vRem := len(v.words)-1, v.width%WordBits
	for i := range b.words {
		var w uint64
		if i < len(v.words) {
			w = v.words[i]
			if i == vTop && vRem != 0 {
				w &= (uint64(1) << vRem) - 1
			}
		}
		if i == len(b.words)-1 {
			if rem := b.width % WordBits; rem != 0 {
				w &= (uint64(1) << rem) - 1
			}
		}
		if b.words[i] != w {
			changed = true
			b.words[i] = w
		}
	}
	return changed
}

// SetUint64 overwrites b in place with v truncated to b's width and reports
// whether the value changed. It never allocates.
func (b *Vector) SetUint64(v uint64) bool {
	if b.width < WordBits {
		v &= (uint64(1) << b.width) - 1
	}
	changed := b.words[0] != v
	b.words[0] = v
	for i := 1; i < len(b.words); i++ {
		if b.words[i] != 0 {
			changed = true
			b.words[i] = 0
		}
	}
	return changed
}

// Resize returns a copy of b truncated or zero-extended to width.
func (b *Vector) Resize(width int) *Vector {
	c := New(width)
	c.CopyFrom(b)
	return c
}

// Uint64 returns the low 64 bits of b.
func (b *Vector) Uint64() uint64 {
	if len(b.words) == 0 {
		return 0
	}
	return b.words[0]
}

// Big returns b as a big.Int.
func (b *Vector) Big() *big.Int {
	x := new(big.Int)
	for i := len(b.words) - 1; i >= 0; i-- {
		x.Lsh(x, WordBits)
		x.Or(x, new(big.Int).SetUint64(b.words[i]))
	}
	return x
}

// IsZero reports whether every bit of b is zero.
func (b *Vector) IsZero() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bool reports whether b is nonzero (Verilog truthiness).
func (b *Vector) Bool() bool { return !b.IsZero() }

// Bit returns bit i of b (0 if i is out of range).
func (b *Vector) Bit(i int) uint {
	if i < 0 || i >= b.width {
		return 0
	}
	return uint(b.words[i/WordBits]>>(i%WordBits)) & 1
}

// SetBit sets bit i of b to v in place. Out-of-range indices are ignored.
func (b *Vector) SetBit(i int, v uint) {
	if i < 0 || i >= b.width {
		return
	}
	mask := uint64(1) << (i % WordBits)
	if v&1 != 0 {
		b.words[i/WordBits] |= mask
	} else {
		b.words[i/WordBits] &^= mask
	}
}

// Equal reports whether a and b hold the same value, ignoring width
// differences (both are compared as unbounded unsigned integers).
func (b *Vector) Equal(o *Vector) bool {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		if x != y {
			return false
		}
	}
	return true
}

// Cmp compares a and b as unsigned integers: -1 if b<o, 0 if equal, 1 if b>o.
func (b *Vector) Cmp(o *Vector) int {
	n := len(b.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := n - 1; i >= 0; i-- {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		if x < y {
			return -1
		}
		if x > y {
			return 1
		}
	}
	return 0
}

// binary width rule: result width of arithmetic/bitwise binary ops is the
// max of the operand widths (callers apply context-widening separately).
func maxWidth(a, o *Vector) int {
	if a.width > o.width {
		return a.width
	}
	return o.width
}

// Add returns a+o at the max operand width (carry out is truncated).
func (b *Vector) Add(o *Vector) *Vector {
	r := New(maxWidth(b, o))
	var carry uint64
	for i := range r.words {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		s := x + y
		c1 := uint64(0)
		if s < x {
			c1 = 1
		}
		s2 := s + carry
		if s2 < s {
			c1 = 1
		}
		r.words[i] = s2
		carry = c1
	}
	r.normalize()
	return r
}

// Sub returns a-o (two's complement) at the max operand width.
func (b *Vector) Sub(o *Vector) *Vector {
	r := New(maxWidth(b, o))
	var borrow uint64
	for i := range r.words {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		d := x - y
		b1 := uint64(0)
		if x < y {
			b1 = 1
		}
		d2 := d - borrow
		if d < borrow {
			b1 = 1
		}
		r.words[i] = d2
		borrow = b1
	}
	r.normalize()
	return r
}

// Neg returns the two's complement negation of b at b's width.
func (b *Vector) Neg() *Vector {
	return New(b.width).Sub(b)
}

// Mul returns a*o truncated to the max operand width.
func (b *Vector) Mul(o *Vector) *Vector {
	w := maxWidth(b, o)
	// Schoolbook multiply over 32-bit halves keeps everything in uint64.
	x, y := b.Big(), o.Big()
	return FromBig(w, new(big.Int).Mul(x, y))
}

// Div returns a/o (unsigned) at the max operand width; division by zero
// yields zero.
func (b *Vector) Div(o *Vector) *Vector {
	w := maxWidth(b, o)
	if o.IsZero() {
		return New(w)
	}
	return FromBig(w, new(big.Int).Div(b.Big(), o.Big()))
}

// Mod returns a%o (unsigned) at the max operand width; modulus by zero
// yields zero.
func (b *Vector) Mod(o *Vector) *Vector {
	w := maxWidth(b, o)
	if o.IsZero() {
		return New(w)
	}
	return FromBig(w, new(big.Int).Mod(b.Big(), o.Big()))
}

// Pow returns a**o truncated to a's width (Verilog-2001 power operator).
func (b *Vector) Pow(o *Vector) *Vector {
	w := b.width
	if o.IsZero() {
		return FromUint64(w, 1)
	}
	mod := new(big.Int).Lsh(big.NewInt(1), uint(w))
	return FromBig(w, new(big.Int).Exp(b.Big(), o.Big(), mod))
}

func (b *Vector) bitwise(o *Vector, f func(x, y uint64) uint64) *Vector {
	r := New(maxWidth(b, o))
	for i := range r.words {
		var x, y uint64
		if i < len(b.words) {
			x = b.words[i]
		}
		if i < len(o.words) {
			y = o.words[i]
		}
		r.words[i] = f(x, y)
	}
	r.normalize()
	return r
}

// And returns the bitwise AND at the max operand width.
func (b *Vector) And(o *Vector) *Vector {
	return b.bitwise(o, func(x, y uint64) uint64 { return x & y })
}

// Or returns the bitwise OR at the max operand width.
func (b *Vector) Or(o *Vector) *Vector {
	return b.bitwise(o, func(x, y uint64) uint64 { return x | y })
}

// Xor returns the bitwise XOR at the max operand width.
func (b *Vector) Xor(o *Vector) *Vector {
	return b.bitwise(o, func(x, y uint64) uint64 { return x ^ y })
}

// Xnor returns the bitwise XNOR at the max operand width.
func (b *Vector) Xnor(o *Vector) *Vector {
	r := b.bitwise(o, func(x, y uint64) uint64 { return ^(x ^ y) })
	r.normalize()
	return r
}

// Not returns the bitwise complement of b at b's width.
func (b *Vector) Not() *Vector {
	r := New(b.width)
	for i := range r.words {
		r.words[i] = ^b.words[i]
	}
	r.normalize()
	return r
}

// RedAnd returns the 1-bit AND reduction of b.
func (b *Vector) RedAnd() *Vector {
	full := b.width / WordBits
	for i := 0; i < full; i++ {
		if b.words[i] != ^uint64(0) {
			return FromBool(false)
		}
	}
	if rem := b.width % WordBits; rem != 0 {
		mask := (uint64(1) << rem) - 1
		if b.words[len(b.words)-1]&mask != mask {
			return FromBool(false)
		}
	}
	return FromBool(true)
}

// RedOr returns the 1-bit OR reduction of b.
func (b *Vector) RedOr() *Vector { return FromBool(!b.IsZero()) }

// RedXor returns the 1-bit XOR reduction (parity) of b.
func (b *Vector) RedXor() *Vector {
	var parity uint64
	for _, w := range b.words {
		parity ^= w
	}
	parity ^= parity >> 32
	parity ^= parity >> 16
	parity ^= parity >> 8
	parity ^= parity >> 4
	parity ^= parity >> 2
	parity ^= parity >> 1
	return FromBool(parity&1 != 0)
}

// Shl returns b shifted left by the value of o (as an unsigned integer),
// truncated to b's width. Shifts at or beyond the width yield zero.
func (b *Vector) Shl(o *Vector) *Vector {
	return b.ShlUint(shiftAmount(o, b.width))
}

// Shr returns b logically shifted right by the value of o, at b's width.
func (b *Vector) Shr(o *Vector) *Vector {
	return b.ShrUint(shiftAmount(o, b.width))
}

// shiftAmount clamps the shift operand to width (any larger amount fully
// shifts the value out, so the exact value does not matter).
func shiftAmount(o *Vector, width int) int {
	for i := 1; i < len(o.words); i++ {
		if o.words[i] != 0 {
			return width
		}
	}
	v := o.Uint64()
	if v > uint64(width) {
		return width
	}
	return int(v)
}

// ShlUint returns b shifted left by n bits, truncated to b's width.
func (b *Vector) ShlUint(n int) *Vector {
	r := New(b.width)
	if n >= b.width {
		return r
	}
	wordShift, bitShift := n/WordBits, uint(n%WordBits)
	for i := len(r.words) - 1; i >= wordShift; i-- {
		w := b.words[i-wordShift] << bitShift
		if bitShift != 0 && i-wordShift-1 >= 0 {
			w |= b.words[i-wordShift-1] >> (WordBits - bitShift)
		}
		r.words[i] = w
	}
	r.normalize()
	return r
}

// ShrUint returns b logically shifted right by n bits, at b's width.
func (b *Vector) ShrUint(n int) *Vector {
	r := New(b.width)
	if n >= b.width {
		return r
	}
	wordShift, bitShift := n/WordBits, uint(n%WordBits)
	for i := 0; i < len(r.words)-wordShift; i++ {
		w := b.words[i+wordShift] >> bitShift
		if bitShift != 0 && i+wordShift+1 < len(b.words) {
			w |= b.words[i+wordShift+1] << (WordBits - bitShift)
		}
		r.words[i] = w
	}
	r.normalize()
	return r
}

// Slice returns bits [hi:lo] of b as a new vector of width hi-lo+1.
// Out-of-range bits read as zero; an inverted range yields a 1-bit zero.
func (b *Vector) Slice(hi, lo int) *Vector {
	if hi < lo {
		return New(1)
	}
	return b.ShrUint(lo).Resize(hi - lo + 1)
}

// SetSlice overwrites bits [hi:lo] of b in place with v (truncated or
// zero-extended to the slice width) and reports whether b changed.
func (b *Vector) SetSlice(hi, lo int, v *Vector) bool {
	if hi < lo || lo >= b.width {
		return false
	}
	if hi >= b.width {
		hi = b.width - 1
	}
	changed := false
	for i := lo; i <= hi; i++ {
		nv := v.Bit(i - lo)
		if b.Bit(i) != nv {
			changed = true
			b.SetBit(i, nv)
		}
	}
	return changed
}

// Concat returns {b, o}: b occupies the high bits, o the low bits.
func (b *Vector) Concat(o *Vector) *Vector {
	r := New(b.width + o.width)
	r.CopyFrom(o)
	shifted := b.Resize(r.width).ShlUint(o.width)
	for i := range r.words {
		r.words[i] |= shifted.words[i]
	}
	r.normalize()
	return r
}

// Repl returns b replicated n times ({n{b}}). n below 1 yields a 1-bit zero.
func (b *Vector) Repl(n int) *Vector {
	if n < 1 {
		return New(1)
	}
	r := New(b.width * n)
	for i := 0; i < n; i++ {
		shifted := b.Resize(r.width).ShlUint(i * b.width)
		for j := range r.words {
			r.words[j] |= shifted.words[j]
		}
	}
	r.normalize()
	return r
}

// ByteLen returns the number of bytes needed to hold b's width.
func (b *Vector) ByteLen() int { return (b.width + 7) / 8 }

// AppendBytesLE appends b's value to dst as ByteLen() little-endian
// bytes (the wire encoding of the engine protocol).
func (b *Vector) AppendBytesLE(dst []byte) []byte {
	n := b.ByteLen()
	for i := 0; i < n; i++ {
		dst = append(dst, byte(b.words[i/8]>>((i%8)*8)))
	}
	return dst
}

// FromBytesLE builds a vector of the given width from little-endian
// bytes (the inverse of AppendBytesLE). Missing bytes read as zero,
// excess bytes and out-of-width bits are truncated, so any input yields
// a normalized vector.
func FromBytesLE(width int, data []byte) *Vector {
	b := New(width)
	n := b.ByteLen()
	if len(data) < n {
		n = len(data)
	}
	for i := 0; i < n; i++ {
		b.words[i/8] |= uint64(data[i]) << ((i % 8) * 8)
	}
	b.normalize()
	return b
}

// String formats b as width'hXX... (Verilog sized hexadecimal).
func (b *Vector) String() string {
	return fmt.Sprintf("%d'h%s", b.width, b.Hex())
}

// Hex returns the hexadecimal digits of b, without prefix, using the
// minimal digit count for the width.
func (b *Vector) Hex() string {
	digits := (b.width + 3) / 4
	var sb strings.Builder
	for i := digits - 1; i >= 0; i-- {
		nib := (b.words[i*4/WordBits] >> ((i * 4) % WordBits)) & 0xf
		sb.WriteByte("0123456789abcdef"[nib])
	}
	return sb.String()
}

// Bin returns the binary digits of b, one character per bit.
func (b *Vector) Bin() string {
	var sb strings.Builder
	for i := b.width - 1; i >= 0; i-- {
		sb.WriteByte('0' + byte(b.Bit(i)))
	}
	return sb.String()
}

// Dec returns the decimal representation of b.
func (b *Vector) Dec() string { return b.Big().String() }

// Oct returns the octal digits of b.
func (b *Vector) Oct() string { return b.Big().Text(8) }
