package transport

import "errors"

// ErrEngineUnavailable reports that a transport could not reach its
// engine host: the dial failed or the retry budget was exhausted
// without a reply. Callers match it with errors.Is to distinguish
// "the host is gone" (supervise: trip the breaker, fail over) from
// engine-level failures, which travel inside Reply.Err and never
// carry this sentinel.
var ErrEngineUnavailable = errors.New("engine unavailable")

// ErrDaemonRestarted reports that the transport reconnected to a host
// whose boot epoch differs from the one it had been talking to: the
// daemon died and came back, and any engine state it serves — even
// under the same engine IDs, re-bound from a journal — reflects the
// last journaled snapshot, not the live progress the runtime made
// since. Retrying is deliberately NOT done: a retry would succeed
// against the stale state and hide the loss. Callers fail over from
// their own committed state instead. Always wrapped so errors.Is also
// matches ErrEngineUnavailable.
var ErrDaemonRestarted = errors.New("engine daemon restarted")
