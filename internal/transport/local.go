package transport

import (
	"fmt"
	"sync/atomic"

	"cascade/internal/engine"
	"cascade/internal/proto"
)

// Local is the in-process transport: protocol structs are dispatched
// directly onto one engine with no serialization and no copying —
// vectors, events, and state snapshots cross as pointers, exactly as
// the pre-protocol direct-call path did. It exists so the message
// protocol costs nothing when the engine shares the runtime's heap
// (benchmark-gated: see BenchmarkLocalTransportOverhead).
//
// A Local carries exactly one engine. Spawn is not its job — the
// runtime constructs in-process engines itself and wraps them — and the
// engine may be swapped in place when the JIT migrates the subprogram
// between software and hardware.
type Local struct {
	e          engine.Engine
	roundTrips atomic.Uint64
}

// NewLocal wraps a pre-built engine in a transport.
func NewLocal(e engine.Engine) *Local { return &Local{e: e} }

// Engine returns the wrapped engine.
func (l *Local) Engine() engine.Engine { return l.e }

// Swap replaces the wrapped engine (the JIT's hot swap). Callers must
// not race Swap with Roundtrip; the runtime swaps only between steps,
// on the controller goroutine.
func (l *Local) Swap(e engine.Engine) { l.e = e }

// Kind implements Transport.
func (l *Local) Kind() string { return "local" }

// Stats implements Transport. Local round-trips move no bytes.
func (l *Local) Stats() Stats { return Stats{RoundTrips: l.roundTrips.Load()} }

// Close implements Transport.
func (l *Local) Close() error { return nil }

// Roundtrip implements Transport by direct dispatch.
func (l *Local) Roundtrip(req *proto.Request, rep *proto.Reply) (Cost, error) {
	l.roundTrips.Add(1)
	e := l.e
	*rep = proto.Reply{Kind: req.Kind, Engine: req.Engine}
	switch req.Kind {
	case proto.KindRead:
		e.Read(engine.Event{Var: req.Var, Val: req.Val})
	case proto.KindDrainWrites:
		rep.Events = e.DrainWrites()
	case proto.KindThereAreEvals:
		rep.Bool = e.ThereAreEvals()
	case proto.KindEvaluate:
		e.Evaluate()
	case proto.KindThereAreUpdates:
		rep.Bool = e.ThereAreUpdates()
	case proto.KindUpdate:
		e.Update()
	case proto.KindGetState:
		rep.State = e.GetState()
	case proto.KindSetState:
		if req.State != nil {
			e.SetState(req.State)
		}
	case proto.KindEndStep:
		e.EndStep()
	case proto.KindEnd:
		e.End()
	case proto.KindSpawn:
		rep.Err = "local transport does not spawn engines"
	case proto.KindSessionOpen, proto.KindSessionClose:
		// Sessions are a daemon concept: one Local carries one in-process
		// engine and has no fabric to partition.
		rep.Err = "local transport does not manage sessions"
	default:
		return Cost{}, fmt.Errorf("transport: unknown request kind %d", req.Kind)
	}
	rep.Loc = e.Loc()
	if ur, ok := e.(engine.UsageReporter); ok {
		rep.Usage = ur.UsageDelta()
	}
	return Cost{}, nil
}
