package transport

import (
	"bytes"
	"path/filepath"
	"testing"

	"cascade/internal/proto"
	"cascade/internal/sim"
)

func encState(st *sim.State) []byte {
	return proto.EncodeRequest(nil, &proto.Request{Kind: proto.KindSetState, State: st})
}

// TestHostJournalReplaySessionOnly is the satellite regression: the
// daemon is killed between session-open and the first spawn. The
// journal holds exactly one record; a fresh host over the same file
// must resume the session (region + tenant + ID) so the reconnecting
// client's spawns bind to it instead of erroring "unknown session".
func TestHostJournalReplaySessionOnly(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sessions.journal")

	h1 := NewHost(HostOptions{DisableJIT: true})
	if _, _, err := h1.EnableJournal(jpath); err != nil {
		t.Fatal(err)
	}
	var rep proto.Reply
	h1.Handle(&proto.Request{Kind: proto.KindSessionOpen, Path: "alice", Quota: 5000}, &rep)
	if rep.Err != "" {
		t.Fatalf("session open: %s", rep.Err)
	}
	sess := rep.Engine
	// SIGKILL: h1 is abandoned without any teardown or journal close.

	h2 := NewHost(HostOptions{DisableJIT: true})
	sessions, engines, err := h2.EnableJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 1 || engines != 0 {
		t.Fatalf("resumed sessions=%d engines=%d, want 1 and 0", sessions, engines)
	}
	// The client still holds the old session ID; a spawn bound to it
	// must land in the resumed session.
	h2.Handle(&proto.Request{Kind: proto.KindSpawn, Path: "main.c", Source: ctrSrc, Session: sess}, &rep)
	if rep.Err != "" {
		t.Fatalf("spawn into resumed session: %s", rep.Err)
	}
	// A second open under the same name must still collide: the
	// resumed session is the real one, not a ghost.
	h2.Handle(&proto.Request{Kind: proto.KindSessionOpen, Path: "alice"}, &rep)
	if rep.Err == "" {
		t.Fatal("duplicate session name accepted after replay; session not truly resumed")
	}
}

// TestHostJournalReplaySpawnAndState kills the daemon after a spawn
// and a SetState: replay must re-create the engine under the same ID
// with the journaled state installed, so the reconnecting client
// re-binds and reads back what it wrote.
func TestHostJournalReplaySpawnAndState(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "sessions.journal")

	h1 := NewHost(HostOptions{DisableJIT: true})
	if _, _, err := h1.EnableJournal(jpath); err != nil {
		t.Fatal(err)
	}
	var rep proto.Reply
	h1.Handle(&proto.Request{Kind: proto.KindSpawn, Path: "main.c", Source: ctrSrc}, &rep)
	if rep.Err != "" {
		t.Fatalf("spawn: %s", rep.Err)
	}
	id := rep.Engine

	// Advance the engine a few steps locally, then push the state back
	// as a client SetState (the journaled mutation).
	h1.Handle(&proto.Request{Kind: proto.KindGetState, Engine: id}, &rep)
	st := rep.State
	st.Scalars["n"].SetUint64(42)
	h1.Handle(&proto.Request{Kind: proto.KindSetState, Engine: id, State: st}, &rep)
	if rep.Err != "" {
		t.Fatalf("set state: %s", rep.Err)
	}
	want := encState(st)
	// SIGKILL.

	h2 := NewHost(HostOptions{DisableJIT: true})
	sessions, engines, err := h2.EnableJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 0 || engines != 1 {
		t.Fatalf("resumed sessions=%d engines=%d, want 0 and 1", sessions, engines)
	}
	h2.Handle(&proto.Request{Kind: proto.KindGetState, Engine: id}, &rep)
	if rep.Err != "" {
		t.Fatalf("get state after replay: %s", rep.Err)
	}
	if !bytes.Equal(encState(rep.State), want) {
		t.Fatal("replayed engine state diverges from the journaled SetState")
	}
	// New spawns must not collide with the replayed ID.
	h2.Handle(&proto.Request{Kind: proto.KindSpawn, Path: "main.d", Source: ctrSrc}, &rep)
	if rep.Err != "" {
		t.Fatalf("post-replay spawn: %s", rep.Err)
	}
	if rep.Engine == id {
		t.Fatalf("post-replay spawn reused live engine ID %d", id)
	}
}
