package transport

import (
	"testing"

	"cascade/internal/engine"
	"cascade/internal/engine/sweng"
)

// stepOnce runs one full scheduler step (half a clock period) against an
// engine through whatever dispatch path it presents.
func stepOnce(e engine.Engine, clk uint64) {
	e.Read(engine.Event{Var: "clk", Val: boolVec(clk)})
	for e.ThereAreEvals() {
		e.Evaluate()
	}
	for e.ThereAreUpdates() {
		e.Update()
	}
	e.EndStep()
	e.DrainWrites()
}

// BenchmarkEngineDirect is the baseline: the bare engine, direct method
// calls, the pre-protocol dispatch path.
func BenchmarkEngineDirect(b *testing.B) {
	e := sweng.New(elaborateCtr(b, "main.c"), nil, nil, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepOnce(e, uint64(i%2))
	}
}

// BenchmarkLocalTransportOverhead is the gate for the zero-copy claim:
// the same engine behind a Local-transport client. Compare ns/op against
// BenchmarkEngineDirect; the budget is 5%.
func BenchmarkLocalTransportOverhead(b *testing.B) {
	c := NewLocalClient(sweng.New(elaborateCtr(b, "main.c"), nil, nil, false), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepOnce(c, uint64(i%2))
	}
}
