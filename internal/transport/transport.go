// Package transport carries the engine protocol (internal/proto)
// between the runtime and its engines. Two implementations ship: Local,
// a zero-copy in-process fast path that dispatches protocol structs
// directly onto an engine without touching the codec, and TCP, a
// length-prefixed framed connection to a remote engine daemon
// (cmd/cascade-engined) with deadlines, deterministic fault-injected
// drops, and reconnect-and-retry.
//
// The runtime talks to every scheduled engine through a Client, which
// implements engine.Engine over a Transport — so the scheduler cannot
// tell (and must not care) whether a subprogram lives on its own heap,
// in another process, or on another machine. That is the paper's
// Figure-7 ABI boundary made wire-real, and the prerequisite for the
// multi-host sharding direction SYNERGY explored.
package transport

import (
	"cascade/internal/proto"
)

// Cost is the transport-level price of one round-trip, returned to the
// caller so per-engine accounting stays exact even when a transport is
// shared by many engines.
type Cost struct {
	BytesOut uint64
	BytesIn  uint64
	Drops    uint64 // fault-injected drops consumed by this call
	Retries  uint64 // reconnect/resend attempts beyond the first
}

// Stats are a transport's cumulative counters.
type Stats struct {
	RoundTrips uint64
	BytesOut   uint64
	BytesIn    uint64
	Drops      uint64
	Retries    uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.RoundTrips += o.RoundTrips
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.Drops += o.Drops
	s.Retries += o.Retries
}

// WireActivity reports whether any real (non-Local) traffic is counted:
// bytes moved, frames dropped, or attempts retried. RoundTrips is
// deliberately excluded — Local clients meter their zero-copy fast-path
// calls as round-trips, so it is non-zero in every in-process session.
func (s Stats) WireActivity() bool {
	return s.BytesOut > 0 || s.BytesIn > 0 || s.Drops > 0 || s.Retries > 0
}

// Transport moves one request/reply pair at a time. Implementations are
// safe for concurrent Roundtrip calls (the runtime's worker lanes drive
// different engines concurrently over a shared transport).
type Transport interface {
	// Roundtrip sends req and fills rep with the response. A non-nil
	// error means the transport failed (the engine is unreachable);
	// engine-level failures travel inside rep.Err.
	Roundtrip(req *proto.Request, rep *proto.Reply) (Cost, error)
	// Kind names the transport ("local", "tcp") for stats displays.
	Kind() string
	// Stats returns cumulative counters.
	Stats() Stats
	// Close releases the transport's resources.
	Close() error
}
