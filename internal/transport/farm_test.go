package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"cascade/internal/elab"
	"cascade/internal/fpga"
	"cascade/internal/toolchain"
	"cascade/internal/verilog"
)

func farmFlat(t *testing.T) *elab.Flat {
	t.Helper()
	src := `
module M(input wire clk, output reg [7:0] q);
  always @(posedge clk) q <= q + 1;
endmodule`
	st, errs := verilog.ParseSourceText(src)
	if errs != nil {
		t.Fatal(errs)
	}
	f, err := elab.Elaborate(st.Modules[0], "dut", nil)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// startWorker spins up one compile-worker daemon on a loopback listener
// and returns its address plus a stop function.
func startWorker(t *testing.T, cacheDir string, peers []string) (string, func()) {
	t.Helper()
	opts := toolchain.DefaultOptions()
	opts.CacheDir = cacheDir
	h := NewHost(HostOptions{
		Toolchain:     toolchain.New(fpga.NewCycloneV(), opts),
		CompileWorker: true,
		Peers:         peers,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.ServeListener(l)
	return l.Addr().String(), func() { l.Close() }
}

func TestFarmOverTCPMatchesLocal(t *testing.T) {
	addrA, stopA := startWorker(t, "", nil)
	defer stopA()
	addrB, stopB := startWorker(t, "", nil)
	defer stopB()

	links, err := DialFarm([]string{addrA, addrB}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tc := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	fb := tc.UseFarm(toolchain.FarmOptions{Links: links})
	defer fb.Close()

	local := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions()).CompileSync(farmFlat(t), true)

	j := tc.Submit(context.Background(), farmFlat(t), true, 0)
	res := j.Result()
	if res.Err != nil {
		t.Fatalf("remote flow failed: %v", res.Err)
	}
	if res.DurationPs != local.DurationPs || res.AreaLEs != local.AreaLEs {
		t.Fatalf("remote flow diverged from local: dur %d vs %d, area %d vs %d",
			res.DurationPs, local.DurationPs, res.AreaLEs, local.AreaLEs)
	}
	if res.Prog == nil {
		t.Fatal("client must keep its own netlist on remote flows")
	}
	ready, _ := j.ReadyAt()
	if !j.Ready(ready) {
		t.Fatal("job should publish")
	}

	// An identical submission is served from the worker's (published)
	// memory cache at cache-hit latency.
	j2 := tc.Submit(context.Background(), farmFlat(t), true, ready)
	res2 := j2.Result()
	if res2.Err != nil || !res2.CacheHit {
		t.Fatalf("resubmission should hit the worker cache: err=%v hit=%v", res2.Err, res2.CacheHit)
	}
}

func TestFarmWorkerPeerFetchServesColdWorker(t *testing.T) {
	dirA := t.TempDir()
	addrA, stopA := startWorker(t, dirA, nil)
	defer stopA()

	// Warm worker A through a first client.
	linksA, err := DialFarm([]string{addrA}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcA := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	tcA.UseFarm(toolchain.FarmOptions{Links: linksA})
	jA := tcA.Submit(context.Background(), farmFlat(t), true, 0)
	if res := jA.Result(); res.Err != nil || res.CacheHit {
		t.Fatalf("warmup should be a miss: %+v", res)
	}

	// Worker B is cold but peers with A: a client farm pointed only at B
	// gets its bitstream through B's peer-fetch tier.
	addrB, stopB := startWorker(t, "", []string{addrA})
	defer stopB()
	linksB, err := DialFarm([]string{addrB}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcB := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	tcB.UseFarm(toolchain.FarmOptions{Links: linksB})
	jB := tcB.Submit(context.Background(), farmFlat(t), true, 0)
	res := jB.Result()
	if res.Err != nil || !res.CacheHit || res.HitSource != toolchain.HitPeer {
		t.Fatalf("cold worker should serve from its peer: err=%v hit=%v src=%q",
			res.Err, res.CacheHit, res.HitSource)
	}
	if res.DurationPs != toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions()).CompileSync(farmFlat(t), true).DurationPs {
		// A peer hit bills cache-hit latency, which is far below a full
		// flow — sanity-check it is not a full recompile bill.
		if res.DurationPs >= 45e12 {
			t.Fatalf("peer hit billed like a full flow: %d", res.DurationPs)
		}
	}
}

// TestFarmMutuallyPeeredWorkersDoNotRecurse pins the deployment shape
// farm_smoke.sh uses: every worker peered with every other. A miss used
// to chase itself around the ring forever (A's fetch consulted A's peer
// tier, which asked B, whose fetch asked A, ...). A compile on a cold
// key must terminate — peers answer fetches from their own state only —
// and a warmed sibling must still serve a genuine peer hit.
func TestFarmMutuallyPeeredWorkersDoNotRecurse(t *testing.T) {
	// Addresses are needed before the workers exist, so reserve both
	// listeners first and wire the hosts to them.
	mk := func() (net.Listener, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return l, l.Addr().String()
	}
	lA, addrA := mk()
	lB, addrB := mk()
	defer lA.Close()
	defer lB.Close()
	hA := NewHost(HostOptions{
		Toolchain:     toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions()),
		CompileWorker: true, Peers: []string{addrB},
	})
	hB := NewHost(HostOptions{
		Toolchain:     toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions()),
		CompileWorker: true, Peers: []string{addrA},
	})
	go hA.ServeListener(lA)
	go hB.ServeListener(lB)

	links, err := DialFarm([]string{addrA}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcA := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	tcA.UseFarm(toolchain.FarmOptions{Links: links})

	done := make(chan *toolchain.Result, 1)
	go func() {
		done <- tcA.Submit(context.Background(), farmFlat(t), true, 0).Result()
	}()
	select {
	case res := <-done:
		if res.Err != nil || res.CacheHit {
			t.Fatalf("cold compile through the ring should be a plain miss: %+v", res)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cold compile never returned: peer fetch is recursing around the ring")
	}

	// B never compiled the design; a client pointed only at B is served
	// across the ring from A.
	linksB, err := DialFarm([]string{addrB}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tcB := toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())
	tcB.UseFarm(toolchain.FarmOptions{Links: linksB})
	res := tcB.Submit(context.Background(), farmFlat(t), true, 0).Result()
	if res.Err != nil || !res.CacheHit || res.HitSource != toolchain.HitPeer {
		t.Fatalf("warmed sibling should serve a peer hit: err=%v hit=%v src=%q",
			res.Err, res.CacheHit, res.HitSource)
	}
}

func TestFarmRejectsNonWorkerDaemon(t *testing.T) {
	// A plain engine daemon (no -compile-worker) answers farm kinds with
	// a reply-level error, which the link surfaces as a Go error.
	h := NewHost(HostOptions{Toolchain: toolchain.New(fpga.NewCycloneV(), toolchain.DefaultOptions())})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go h.ServeListener(l)
	links, err := DialFarm([]string{l.Addr().String()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer links[0].Close()
	if _, err := links[0].Submit(toolchain.ShardSubmit{Key: "k", Name: "m"}); err == nil {
		t.Fatal("submit to a non-worker daemon should fail")
	}
	if err := links[0].Ping(); err != nil {
		t.Fatalf("ping must still work on any daemon: %v", err)
	}
}

func TestFarmLinkRetriesAcrossWorkerRestart(t *testing.T) {
	opts := toolchain.DefaultOptions()
	h1 := NewHost(HostOptions{Toolchain: toolchain.New(fpga.NewCycloneV(), opts), CompileWorker: true})
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	go h1.ServeListener(l1)
	links, err := DialFarm([]string{addr}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer links[0].Close()
	if err := links[0].Ping(); err != nil {
		t.Fatal(err)
	}

	// Restart the worker on the same address: a new Host (new epoch)
	// behind a new listener. The epoch latch fires ErrDaemonRestarted
	// once; the link absorbs it — a compile worker's state is a cache,
	// safe to retry against cold.
	l1.Close()
	h2 := NewHost(HostOptions{Toolchain: toolchain.New(fpga.NewCycloneV(), opts), CompileWorker: true})
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer l2.Close()
	go h2.ServeListener(l2)

	if _, err := links[0].Submit(toolchain.ShardSubmit{
		Key: "k", Name: "m", Cells: 10, FFs: 8, CritPath: 2}); err != nil {
		t.Fatalf("submit should survive a worker restart: %v", err)
	}
}
