package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"cascade/internal/bits"
	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/engine/sweng"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/toolchain"
	"cascade/internal/verilog"
)

// Compile-time conformance: clients are engines, transports are
// transports.
var (
	_ engine.Engine        = (*Client)(nil)
	_ engine.UsageReporter = (*Client)(nil)
	_ Transport            = (*Local)(nil)
	_ Transport            = (*TCP)(nil)
)

const ctrSrc = `module Ctr(input wire clk, output wire [7:0] out);
  reg [7:0] n = 1;
  always @(posedge clk) begin
    n <= n + 3;
    $display("n=%d", n);
  end
  assign out = n;
endmodule`

// recorder is an engine.IOHandler that logs everything.
type recorder struct {
	mu   sync.Mutex
	out  strings.Builder
	fins int
	errs []error
}

func (r *recorder) Display(text string, newline bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.out.WriteString(text)
	if newline {
		r.out.WriteByte('\n')
	}
}

func (r *recorder) Finish(code int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fins++
}

func (r *recorder) onErr(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.errs = append(r.errs, err)
}

func (r *recorder) output() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.out.String()
}

func elaborateCtr(t testing.TB, path string) *elab.Flat {
	t.Helper()
	st, errs := verilog.ParseSourceText(ctrSrc)
	if errs != nil {
		t.Fatalf("parse: %v", errs)
	}
	f, err := elab.Elaborate(st.Modules[0], path, nil)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return f
}

// drive runs the scheduler's per-step ABI sequence against an engine for
// n clock ticks and returns the drained data-plane trace plus the final
// state signature — everything observable through the protocol.
func drive(e engine.Engine, ticks int) (trace string, sig string) {
	var sb strings.Builder
	for i := 0; i < 2*ticks; i++ {
		clk := uint64(i % 2)
		e.Read(engine.Event{Var: "clk", Val: boolVec(clk)})
		for e.ThereAreEvals() {
			e.Evaluate()
		}
		for e.ThereAreUpdates() {
			e.Update()
		}
		e.EndStep()
		for _, ev := range e.DrainWrites() {
			fmt.Fprintf(&sb, "%d:%s=%s;", i, ev.Var, ev.Val)
		}
	}
	return sb.String(), e.GetState().Signature()
}

func boolVec(v uint64) *bits.Vector { return bits.FromUint64(1, v) }

// loopbackHost starts a Host behind a real TCP listener and returns its
// address (the listener closes with the test).
func loopbackHost(t testing.TB, opts HostOptions) (*Host, string) {
	t.Helper()
	h := NewHost(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go h.ServeListener(l)
	return h, l.Addr().String()
}

// TestTransportEquivalence drives the same subprogram through a bare
// engine, a Local client, and a loopback-TCP client and asserts
// byte-identical $display output, data-plane traces, and snapshots.
func TestTransportEquivalence(t *testing.T) {
	const ticks = 25

	// Baseline: the bare engine, direct method calls.
	recBare := &recorder{}
	bare := sweng.New(elaborateCtr(t, "main.c"), recBare, nil, false)
	traceBare, sigBare := drive(bare, ticks)

	// Local transport.
	recLocal := &recorder{}
	local := NewLocalClient(sweng.New(elaborateCtr(t, "main.c"), recLocal, nil, false), nil)
	traceLocal, sigLocal := drive(local, ticks)

	// Loopback TCP.
	_, addr := loopbackHost(t, HostOptions{DisableJIT: true})
	tcpT, err := DialTCP(addr, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()
	recTCP := &recorder{}
	remote, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc}, recTCP, nil, nil, recTCP.onErr)
	if err != nil {
		t.Fatal(err)
	}
	traceTCP, sigTCP := drive(remote, ticks)

	if got := recLocal.output(); got != recBare.output() {
		t.Errorf("local display output diverges:\n%q\n%q", got, recBare.output())
	}
	if got := recTCP.output(); got != recBare.output() {
		t.Errorf("tcp display output diverges:\n%q\n%q", got, recBare.output())
	}
	if traceLocal != traceBare || traceTCP != traceBare {
		t.Errorf("data-plane traces diverge:\nbare  %s\nlocal %s\ntcp   %s", traceBare, traceLocal, traceTCP)
	}
	if sigLocal != sigBare || sigTCP != sigBare {
		t.Errorf("state signatures diverge:\nbare  %s\nlocal %s\ntcp   %s", sigBare, sigLocal, sigTCP)
	}
	if recBare.output() == "" {
		t.Fatal("test program produced no output; the comparison is vacuous")
	}

	// The remote engine metered its interpreter work and the transport
	// round-trips.
	u := remote.UsageDelta()
	if u.Ops == 0 || u.Msgs == 0 {
		t.Errorf("remote usage not metered: %+v", u)
	}
	st := tcpT.Stats()
	if st.RoundTrips == 0 || st.BytesOut == 0 || st.BytesIn == 0 {
		t.Errorf("tcp stats not counted: %+v", st)
	}
}

// TestTCPInjectedDropsRetry checks the deterministic drop/retry path:
// with a capped always-drop schedule the round-trip succeeds after
// exactly the scripted number of drops, and a second transport with the
// same seed sees the identical schedule.
func TestTCPInjectedDropsRetry(t *testing.T) {
	_, addr := loopbackHost(t, HostOptions{DisableJIT: true})
	run := func() (Stats, string) {
		inj := fault.New(fault.Config{Seed: 7, NetDrop: 1, MaxNetFaults: 2})
		tcpT, err := DialTCP(addr, TCPOptions{Injector: inj, Retries: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer tcpT.Close()
		rec := &recorder{}
		c, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc}, rec, nil, nil, rec.onErr)
		if err != nil {
			t.Fatalf("spawn did not survive capped drops: %v", err)
		}
		_, sig := drive(c, 5)
		return tcpT.Stats(), sig
	}
	st1, sig1 := run()
	st2, sig2 := run()
	if st1.Drops != 2 || st1.Retries != 2 {
		t.Errorf("expected exactly 2 scripted drops and 2 retries, got %+v", st1)
	}
	if st1.Drops != st2.Drops || st1.Retries != st2.Retries || sig1 != sig2 {
		t.Errorf("fault schedule not deterministic: %+v vs %+v", st1, st2)
	}
}

// TestTCPUnreachableLatches checks the degradation contract: when the
// daemon becomes unreachable the client reports the error once and goes
// inert instead of wedging the caller.
func TestTCPUnreachableLatches(t *testing.T) {
	h := NewHost(HostOptions{DisableJIT: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go h.ServeListener(l)
	tcpT, err := DialTCP(l.Addr().String(), TCPOptions{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	c, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc}, rec, nil, nil, rec.onErr)
	if err != nil {
		t.Fatal(err)
	}
	// Take the daemon away: no listener, no live connection.
	l.Close()
	tcpT.Close()

	c.Evaluate()
	if c.Err() == nil {
		t.Fatal("transport failure did not latch")
	}
	if c.ThereAreEvals() || c.ThereAreUpdates() || c.DrainWrites() != nil {
		t.Error("latched client is not inert")
	}
	if st := c.GetState(); st == nil || len(st.Scalars) != 0 {
		t.Error("latched GetState should return an empty snapshot")
	}
	if len(rec.errs) != 1 {
		t.Errorf("error should be reported exactly once, got %d", len(rec.errs))
	}
}

// TestHostSpawnRejectsBadSource checks engine-level errors travel in
// the reply, not as transport failures.
func TestHostSpawnRejectsBadSource(t *testing.T) {
	_, addr := loopbackHost(t, HostOptions{DisableJIT: true})
	tcpT, err := DialTCP(addr, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()
	if _, err := Spawn(tcpT, SpawnSpec{Path: "x", Source: "module broken("}, nil, nil, nil, nil); err == nil {
		t.Fatal("bad spawn source accepted")
	}
	if _, err := Spawn(tcpT, SpawnSpec{Path: "x", Source: ""}, nil, nil, nil, nil); err == nil {
		t.Fatal("empty spawn source accepted")
	}
	// The transport survives: a good spawn still works.
	if _, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc}, nil, nil, nil, nil); err != nil {
		t.Fatalf("transport did not survive a rejected spawn: %v", err)
	}
}

// TestHostSessions exercises the daemon session layer end to end over
// loopback TCP: sessions carve fabric regions, engines spawned into a
// session promote onto its region (not the shared fabric), compile
// stats are tenant-scoped, and close ends owned engines and frees the
// region.
func TestHostSessions(t *testing.T) {
	dev := fpga.NewDevice(10_000, 50_000_000)
	o := toolchain.DefaultOptions()
	o.Scale = 1e9
	o.BasePs = 1
	tc := toolchain.New(dev, o)
	h, addr := loopbackHost(t, HostOptions{Device: dev, Toolchain: tc})
	tcpT, err := DialTCP(addr, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()

	a, err := OpenSession(tcpT, "a", 4_000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSession(tcpT, "b", 4_000, 1, 0); err != nil {
		t.Fatal(err)
	}
	if used := dev.Used(); used != 8_000 {
		t.Fatalf("two 4k regions should hold 8k LEs, got %d", used)
	}
	if _, err := OpenSession(tcpT, "a", 1_000, 0, 0); err == nil {
		t.Error("duplicate session name accepted")
	}
	if _, err := OpenSession(tcpT, "c", 4_000, 0, 0); err == nil {
		t.Error("session beyond fabric capacity accepted")
	}

	vnow := uint64(0)
	rec := &recorder{}
	c, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc, JIT: true, Session: a},
		rec, nil, func() uint64 { return vnow }, rec.onErr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Spawn(tcpT, SpawnSpec{Path: "x", Source: ctrSrc, Session: 99}, nil, nil, nil, nil); err == nil {
		t.Error("spawn into unknown session accepted")
	}
	vnow = 1 << 62
	promoted := false
	for i := 0; i < 200; i++ {
		drive(c, 1)
		if c.Loc() == engine.Hardware {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("session engine never promoted")
	}
	// The promotion landed on session a's private region device: the
	// shared fabric still accounts exactly the two session regions.
	if used := dev.Used(); used != 8_000 {
		t.Errorf("promotion leaked onto the shared fabric: %d LEs used", used)
	}
	if got := tc.StatsFor("a").Submitted; got == 0 {
		t.Error("tenant a's compile not scoped to its stats")
	}
	if got := tc.StatsFor("b").Submitted; got != 0 {
		t.Errorf("tenant b inherited %d submissions", got)
	}

	if err := CloseSession(tcpT, a, vnow); err != nil {
		t.Fatal(err)
	}
	if n := h.Engines(); n != 0 {
		t.Errorf("session close left %d engines hosted", n)
	}
	if n := h.Sessions(); n != 1 {
		t.Errorf("session count = %d, want 1", n)
	}
	if used := dev.Used(); used != 4_000 {
		t.Errorf("closed session's region leaked: %d LEs used", used)
	}
	if err := CloseSession(tcpT, a, vnow); err == nil {
		t.Error("double session close accepted")
	}
}

// TestHostJITPromotion checks the host-side slice of the Figure-9 state
// machine: a spawn with JIT requested is promoted to the host's fabric
// once its background compile is ready, and the reply envelopes
// advertise the flip.
func TestHostJITPromotion(t *testing.T) {
	dev := fpga.NewCycloneV()
	o := toolchain.DefaultOptions()
	o.Scale = 1e9
	o.BasePs = 1
	_, addr := loopbackHost(t, HostOptions{Device: dev, Toolchain: toolchain.New(dev, o)})
	tcpT, err := DialTCP(addr, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()
	vnow := uint64(0)
	rec := &recorder{}
	c, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc, JIT: true}, rec,
		nil, func() uint64 { return vnow }, rec.onErr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Loc() != engine.Software {
		t.Fatal("hosted engine should start in software")
	}
	// Give the background compile real time to finish, then pass its
	// virtual ready point; the next EndStep promotes.
	deadline := 200
	vnow = 1 << 62
	promoted := false
	for i := 0; i < deadline; i++ {
		drive(c, 1)
		if c.Loc() == engine.Hardware {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("hosted engine never promoted to hardware")
	}
	// Post-promotion execution still works and meters fabric cycles.
	_, sig := drive(c, 3)
	if sig == "" {
		t.Fatal("no state after promotion")
	}
	u := c.UsageDelta()
	if u.Cycles == 0 {
		t.Errorf("promoted engine billed no cycles: %+v", u)
	}
}
