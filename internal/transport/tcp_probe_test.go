package transport

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"cascade/internal/proto"
)

// TestTCPProbeOnReconnect is the regression test for half-open socket
// detection: a reconnect that succeeds at dial time but whose peer
// never answers used to burn a full CallTimeout per retry on the one
// dead socket. With probe-on-reconnect every fresh connection is
// pinged under the short ProbeTimeout first, so the whole retry budget
// drains at probe cost and the caller gets a typed
// ErrEngineUnavailable fast.
func TestTCPProbeOnReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		first := true
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			if first {
				// The eager DialTCP connection: kill it immediately so
				// the first round-trip attempt fails and the retry path
				// has to reconnect.
				first = false
				c.Close()
				continue
			}
			// Every reconnect lands on a half-open peer: the handshake
			// completes, then the "daemon" reads forever and never
			// replies — exactly what a hung or dying cascade-engined
			// looks like from the client side.
			go io.Copy(io.Discard, c)
		}
	}()

	const callTimeout = 5 * time.Second
	tr, err := DialTCP(ln.Addr().String(), TCPOptions{
		DialTimeout:  time.Second,
		CallTimeout:  callTimeout,
		ProbeTimeout: 50 * time.Millisecond,
		Retries:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	start := time.Now()
	var rep proto.Reply
	_, err = tr.Roundtrip(&proto.Request{Kind: proto.KindThereAreEvals, Engine: 1}, &rep)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("round-trip against a half-open peer succeeded")
	}
	if !errors.Is(err, ErrEngineUnavailable) {
		t.Fatalf("error not errors.Is(ErrEngineUnavailable): %v", err)
	}
	// Two reconnect attempts at probe cost (~50ms each) plus slack.
	// Without the probe each reconnect would stall for the full 5s
	// CallTimeout and the budget would take >10s to drain.
	if elapsed >= callTimeout {
		t.Fatalf("retry budget took %v to drain; probe-on-reconnect is not biting", elapsed)
	}
}

// TestTCPProbeReconnectLiveHost pins the happy path: after losing its
// connection to a healthy daemon, the transport redials, the probe
// passes, and the round-trip completes without surfacing an error.
func TestTCPProbeReconnectLiveHost(t *testing.T) {
	_, addr := loopbackHost(t, HostOptions{DisableJIT: true})
	tr, err := DialTCP(addr, TCPOptions{ProbeTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var rep proto.Reply
	if _, err := tr.Roundtrip(&proto.Request{Kind: proto.KindPing}, &rep); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if rep.Kind != proto.KindPing || rep.Err != "" {
		t.Fatalf("ping reply = %+v", rep)
	}
	// Drop the connection; the next call must redial + probe + serve.
	tr.Close()
	if _, err := tr.Roundtrip(&proto.Request{Kind: proto.KindPing}, &rep); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
	if rep.Err != "" {
		t.Fatalf("ping reply after reconnect carried error %q", rep.Err)
	}
}
