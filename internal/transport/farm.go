package transport

import (
	"errors"
	"fmt"
	"sync"

	"cascade/internal/proto"
	"cascade/internal/toolchain"
)

// FarmLink is the client side of one compile-farm shard: it implements
// toolchain.ShardLink over the engine protocol's TCP transport, so a
// FarmBackend routes compile flows to cascade-engined daemons started
// with -compile-worker. A worker restart surfaces through the transport
// epoch latch as ErrDaemonRestarted exactly once; unlike engine state,
// a compile worker's state is a cache — safe to retry against cold —
// so the link absorbs the typed error and retries the call on the new
// epoch (worst case: a cache miss that recompiles).
type FarmLink struct {
	tcp *TCP
}

// DialFarm connects one FarmLink per address (each a compile-worker
// daemon), for FarmOptions.Links. On any dial failure the links already
// made are closed and the error names the failing worker.
func DialFarm(addrs []string, opts TCPOptions) ([]toolchain.ShardLink, error) {
	var links []toolchain.ShardLink
	for _, addr := range addrs {
		tcp, err := DialTCP(addr, opts)
		if err != nil {
			for _, l := range links {
				l.Close()
			}
			return nil, fmt.Errorf("transport: compile worker %s: %w", addr, err)
		}
		links = append(links, &FarmLink{tcp: tcp})
	}
	return links, nil
}

// call runs one farm round-trip, absorbing a single daemon-restart
// latch (see the type comment) and converting host-level errors to Go
// errors.
func (l *FarmLink) call(req *proto.Request, rep *proto.Reply) error {
	_, err := l.tcp.Roundtrip(req, rep)
	if errors.Is(err, ErrDaemonRestarted) {
		_, err = l.tcp.Roundtrip(req, rep)
	}
	if err != nil {
		return err
	}
	if rep.Err != "" {
		return fmt.Errorf("transport: compile worker %s: %s", l.tcp.Addr(), rep.Err)
	}
	return nil
}

// Submit implements toolchain.ShardLink.
func (l *FarmLink) Submit(spec toolchain.ShardSubmit) (toolchain.ShardOutcome, error) {
	req := &proto.Request{Kind: proto.KindCompileSubmit, VNow: spec.SubmitPs, Farm: &proto.FarmJob{
		Key: spec.Key, Name: spec.Name, Wrapped: spec.Wrapped,
		SubmitPs: spec.SubmitPs, BackoffPs: spec.BackoffPs,
		Cells: spec.Cells, FFs: spec.FFs, MemBits: spec.MemBits, CritPath: spec.CritPath,
	}}
	var rep proto.Reply
	if err := l.call(req, &rep); err != nil {
		return toolchain.ShardOutcome{}, err
	}
	if rep.Farm == nil {
		return toolchain.ShardOutcome{}, fmt.Errorf("transport: compile worker %s: reply missing farm payload", l.tcp.Addr())
	}
	f := rep.Farm
	return toolchain.ShardOutcome{
		AreaLEs: f.AreaLEs, RawAreaLEs: f.RawAreaLEs, CritPath: f.CritPath,
		DurationPs: f.DurationPs, CacheHit: f.CacheHit, HitSource: f.HitSource,
		FlowErr: f.FlowErr,
	}, nil
}

// Fetch implements toolchain.ShardLink (the peer-fetch tier).
func (l *FarmLink) Fetch(key string) (toolchain.BitMeta, bool, error) {
	req := &proto.Request{Kind: proto.KindCacheFetch, Farm: &proto.FarmJob{Key: key}}
	var rep proto.Reply
	if err := l.call(req, &rep); err != nil {
		return toolchain.BitMeta{}, false, err
	}
	if rep.Farm == nil || !rep.Farm.Found {
		return toolchain.BitMeta{}, false, nil
	}
	return toolchain.BitMeta{Key: key, AreaLEs: rep.Farm.AreaLEs,
		RawAreaLEs: rep.Farm.RawAreaLEs, CritPath: rep.Farm.CritPath}, true, nil
}

// Put implements toolchain.ShardLink (replication).
func (l *FarmLink) Put(meta toolchain.BitMeta) error {
	req := &proto.Request{Kind: proto.KindCachePut, Farm: &proto.FarmJob{
		Key: meta.Key, AreaLEs: meta.AreaLEs, RawAreaLEs: meta.RawAreaLEs, CritPath: meta.CritPath,
	}}
	var rep proto.Reply
	return l.call(req, &rep)
}

// Publish implements toolchain.ShardLink.
func (l *FarmLink) Publish(key string) error {
	req := &proto.Request{Kind: proto.KindCachePut, Farm: &proto.FarmJob{Key: key, Publish: true}}
	var rep proto.Reply
	return l.call(req, &rep)
}

// Ping implements toolchain.ShardLink (the breaker's probe).
func (l *FarmLink) Ping() error {
	req := &proto.Request{Kind: proto.KindPing}
	var rep proto.Reply
	return l.call(req, &rep)
}

// Addr implements toolchain.ShardLink.
func (l *FarmLink) Addr() string { return l.tcp.Addr() }

// Close implements toolchain.ShardLink.
func (l *FarmLink) Close() error { return l.tcp.Close() }

// peerRing is the worker-side peer-fetch tier: lazy links to sibling
// compile workers, consulted in order. Dials happen on first use and
// failures are misses — daemons start in any order, and a dead sibling
// must never fail a flow (tiers are accelerators).
type peerRing struct {
	addrs []string
	opts  TCPOptions

	mu    sync.Mutex
	links map[string]*FarmLink
}

func newPeerRing(addrs []string, opts TCPOptions) *peerRing {
	return &peerRing{addrs: addrs, opts: opts, links: map[string]*FarmLink{}}
}

func (p *peerRing) link(addr string) *FarmLink {
	p.mu.Lock()
	defer p.mu.Unlock()
	if l, ok := p.links[addr]; ok {
		return l
	}
	tcp, err := DialTCP(addr, p.opts)
	if err != nil {
		return nil
	}
	l := &FarmLink{tcp: tcp}
	p.links[addr] = l
	return l
}

// Lookup consults each sibling in order; the first verified entry wins.
func (p *peerRing) Lookup(key string) (toolchain.BitMeta, bool) {
	for _, addr := range p.addrs {
		l := p.link(addr)
		if l == nil {
			continue
		}
		meta, ok, err := l.Fetch(key)
		if err != nil {
			// Drop the link so the next lookup redials a restarted peer.
			p.mu.Lock()
			delete(p.links, addr)
			p.mu.Unlock()
			l.Close()
			continue
		}
		if ok {
			return meta, true
		}
	}
	return toolchain.BitMeta{}, false
}
