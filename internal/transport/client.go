package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cascade/internal/bits"
	"cascade/internal/engine"
	"cascade/internal/obsv"
	"cascade/internal/proto"
	"cascade/internal/sim"
)

// Client presents a Transport-backed engine to the runtime: it
// implements engine.Engine (plus engine.UsageReporter), so the
// scheduler's lanes dispatch protocol round-trips without knowing where
// the engine lives.
//
// IO ordering contract: replies piggyback the engine's buffered
// $display/$finish events, and the client delivers them to its
// IOHandler synchronously on the goroutine that issued the request —
// before the call returns, hence before the worker lane joins the
// batch. Remote engines therefore obey exactly the same lane-drain
// ordering as in-process ones; no transport goroutine ever touches a
// lane.
//
// Error model: a transport-level failure (daemon unreachable after the
// retry budget) latches. The engine goes inert — polls answer false,
// drains answer nothing, GetState returns an empty snapshot — and the
// error is reported once through onErr. This is deliberate degradation,
// mirroring the hardware fault path: the program limps rather than the
// runtime crashing mid-step.
type Client struct {
	t      Transport
	id     uint32
	name   string
	io     engine.IOHandler
	onErr  func(error)
	remote bool
	nowFn  func() uint64
	vnowFn func() uint64

	// local is the zero-copy fast path: when the transport is Local,
	// engine methods delegate straight to the wrapped engine — no
	// request/reply structs, no locks, nothing between the scheduler and
	// the engine but one pointer indirection and a round-trip counter.
	// Guarded by the same controller-only discipline as Local.Swap.
	local  engine.Engine
	fastRT atomic.Uint64 // fast-path round-trips (for Stats)

	mu      sync.Mutex
	obs     *obsv.Observer
	req     proto.Request
	rep     proto.Reply
	loc     engine.Location
	pending engine.Usage
	stats   Stats
	err     error
}

// SetObserver installs an observability hub on a remote client: location
// changes advertised by reply envelopes — the daemon promoting the
// engine onto its own fabric, or evicting a faulted one back to software
// — are traced as hot-swap events, so remote JIT activity flows back
// into the runtime's trace. The fast path of Local clients is untouched
// (local swaps are traced by the runtime's own serviceJIT).
func (c *Client) SetObserver(o *obsv.Observer) {
	c.mu.Lock()
	c.obs = o
	c.mu.Unlock()
}

// NewLocalClient wraps a pre-built in-process engine in a Client over a
// Local transport. onErr may be nil.
func NewLocalClient(e engine.Engine, onErr func(error)) *Client {
	return &Client{
		t:     NewLocal(e),
		name:  e.Name(),
		loc:   e.Loc(),
		onErr: onErr,
		local: e,
	}
}

// SpawnSpec describes a subprogram to instantiate on a remote host.
type SpawnSpec struct {
	Path    string // instance path (the engine's name)
	Source  string // self-contained module declaration
	Params  map[string]*bits.Vector
	Eager   bool   // naive re-evaluation ablation
	JIT     bool   // let the host promote to its own fabric
	Session uint32 // owning daemon session (0: the legacy shared fabric)
}

// Spawn instantiates a subprogram on the host behind t and returns its
// client. io receives the engine's $display/$finish events (including
// those its initial blocks emit during construction, piggybacked on the
// spawn reply). now feeds $time; vnow feeds the host's JIT clock. Both
// may be nil when irrelevant.
func Spawn(t Transport, spec SpawnSpec, io engine.IOHandler, now, vnow func() uint64, onErr func(error)) (*Client, error) {
	c := &Client{
		t:      t,
		name:   spec.Path,
		io:     io,
		onErr:  onErr,
		remote: t.Kind() != "local",
		nowFn:  now,
		vnowFn: vnow,
	}
	rep := c.call(proto.KindSpawn, func(req *proto.Request) {
		req.Path = spec.Path
		req.Source = spec.Source
		req.Params = spec.Params
		req.Eager = spec.Eager
		req.JIT = spec.JIT
		req.Session = spec.Session
	})
	if c.err != nil {
		return nil, c.err
	}
	if rep.Err != "" {
		return nil, &remoteError{rep.Err}
	}
	c.id = rep.Engine
	return c, nil
}

type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "transport: remote: " + e.msg }

// OpenSession opens a tenant session on the daemon behind t: the host
// carves a fabric region of quotaLEs (0 takes the daemon default),
// registers tenant name on its toolchain with a fair share of share
// compile workers (0: global pool only), and returns the session ID to
// stamp into SpawnSpec.Session. vnow feeds the host's virtual clock.
func OpenSession(t Transport, name string, quotaLEs, share int, vnow uint64) (uint32, error) {
	var rep proto.Reply
	req := proto.Request{Kind: proto.KindSessionOpen, VNow: vnow,
		Path: name, Quota: uint64(quotaLEs), Share: uint64(share)}
	if _, err := t.Roundtrip(&req, &rep); err != nil {
		return 0, err
	}
	if rep.Err != "" {
		return 0, &remoteError{rep.Err}
	}
	return rep.Engine, nil
}

// CloseSession tears down a daemon session opened with OpenSession,
// ending its engines and releasing its fabric region.
func CloseSession(t Transport, id uint32, vnow uint64) error {
	var rep proto.Reply
	req := proto.Request{Kind: proto.KindSessionClose, Session: id, VNow: vnow}
	if _, err := t.Roundtrip(&req, &rep); err != nil {
		return err
	}
	if rep.Err != "" {
		return &remoteError{rep.Err}
	}
	return nil
}

// Underlying returns the in-process engine behind a Local client (nil
// for remote clients). The runtime uses it where it genuinely needs the
// concrete engine — hot swaps, forwarding, open-loop bursts.
func (c *Client) Underlying() engine.Engine { return c.local }

// SwapLocal replaces the engine behind a Local client in place (the
// JIT's hot swap), preserving the client's cumulative transport stats.
// It panics on remote clients — remote promotion is the host's job.
func (c *Client) SwapLocal(e engine.Engine) {
	l := c.t.(*Local)
	l.Swap(e)
	c.local = e
	c.mu.Lock()
	c.loc = e.Loc()
	c.mu.Unlock()
}

// Transport returns the client's transport.
func (c *Client) Transport() Transport { return c.t }

// Remote reports whether the engine lives on the far side of a real
// transport (its communication is billed per round-trip) rather than
// in-process.
func (c *Client) Remote() bool { return c.remote }

// TransportKind names the transport for stats displays.
func (c *Client) TransportKind() string { return c.t.Kind() }

// Stats returns the client's cumulative per-engine transport counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.RoundTrips += c.fastRT.Load()
	return st
}

// SeedStats pre-loads the cumulative counters (the runtime carries an
// engine's stats across program restarts, which rebuild clients).
func (c *Client) SeedStats(s Stats) {
	c.mu.Lock()
	c.stats.Add(s)
	c.mu.Unlock()
}

// Err returns the latched transport error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// call performs one round-trip. It returns the reply (valid until the
// next call) or nil when the client has latched a transport error.
func (c *Client) call(kind proto.Kind, build func(*proto.Request)) *proto.Reply {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil
	}
	c.req = proto.Request{Kind: kind, Engine: c.id}
	if c.nowFn != nil {
		c.req.Now = c.nowFn()
	}
	if c.vnowFn != nil {
		c.req.VNow = c.vnowFn()
	}
	if build != nil {
		build(&c.req)
	}
	cost, err := c.t.Roundtrip(&c.req, &c.rep)
	c.stats.RoundTrips++
	c.stats.BytesOut += cost.BytesOut
	c.stats.BytesIn += cost.BytesIn
	c.stats.Drops += cost.Drops
	c.stats.Retries += cost.Retries
	if err != nil {
		c.err = err
		if c.onErr != nil {
			c.onErr(err)
		}
		return nil
	}
	// Deliver piggybacked IO on this goroutine, preserving lane order.
	if c.io != nil {
		for _, ev := range c.rep.IO {
			switch ev.Kind {
			case proto.IODisplay:
				c.io.Display(ev.Text, ev.Newline)
			case proto.IOFinish:
				c.io.Finish(ev.Code)
			}
		}
	}
	if c.remote && c.rep.Loc != c.loc && c.obs != nil {
		// The daemon moved the engine (its own Figure-9 machine): a
		// promotion onto its fabric, or an eviction back to software.
		// Worker goroutines issue calls, so the event carries the
		// request's virtual stamp via EmitAt rather than Emit.
		dir := "sw->hw"
		if c.rep.Loc != engine.Hardware {
			dir = "hw->sw"
		}
		c.obs.EmitAt(c.req.VNow, obsv.EvHotSwap, c.name, fmt.Sprintf("remote %s", dir))
		if c.rep.Loc == engine.Hardware {
			c.obs.Promotions.Inc()
		} else {
			c.obs.Evictions.Inc()
		}
	}
	c.loc = c.rep.Loc
	c.pending.Add(c.rep.Usage)
	if c.remote {
		// Every remote round-trip (and each retry) crosses a serialized
		// boundary: bill it like an MMIO transaction. State transfers
		// additionally cost one message per 32-bit word, matching the
		// hardware engines' shadow-register access model.
		c.pending.Msgs += 1 + cost.Retries
		switch kind {
		case proto.KindGetState:
			c.pending.Msgs += stateWords(c.rep.State)
		case proto.KindSetState:
			c.pending.Msgs += stateWords(c.req.State)
		}
	}
	return &c.rep
}

// stateWords counts 32-bit words in a snapshot (the unit the MMIO
// model bills state access in).
func stateWords(st *sim.State) uint64 {
	if st == nil {
		return 0
	}
	words := uint64(0)
	for _, v := range st.Scalars {
		words += uint64((v.Width() + 31) / 32)
	}
	for _, ws := range st.Arrays {
		for _, v := range ws {
			words += uint64((v.Width() + 31) / 32)
		}
	}
	return words
}

// engine.Engine ----------------------------------------------------------

// Name implements engine.Engine (no round-trip).
func (c *Client) Name() string { return c.name }

// Loc implements engine.Engine. Local clients read the engine directly;
// remote clients return the location cached from the latest reply
// envelope. No round-trip either way — the scheduler polls it constantly.
func (c *Client) Loc() engine.Location {
	if c.local != nil {
		return c.local.Loc()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loc
}

// GetState implements engine.Engine.
func (c *Client) GetState() *sim.State {
	if c.local != nil {
		c.fastRT.Add(1)
		return c.local.GetState()
	}
	rep := c.call(proto.KindGetState, nil)
	if rep == nil || rep.State == nil {
		return &sim.State{Scalars: map[string]*bits.Vector{}, Arrays: map[string][]*bits.Vector{}}
	}
	return rep.State
}

// SetState implements engine.Engine.
func (c *Client) SetState(st *sim.State) {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.SetState(st)
		return
	}
	c.call(proto.KindSetState, func(req *proto.Request) { req.State = st })
}

// Read implements engine.Engine.
func (c *Client) Read(ev engine.Event) {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.Read(ev)
		return
	}
	c.call(proto.KindRead, func(req *proto.Request) {
		req.Var = ev.Var
		req.Val = ev.Val
	})
}

// DrainWrites implements engine.Engine.
func (c *Client) DrainWrites() []engine.Event {
	if c.local != nil {
		c.fastRT.Add(1)
		return c.local.DrainWrites()
	}
	rep := c.call(proto.KindDrainWrites, nil)
	if rep == nil {
		return nil
	}
	return rep.Events
}

// ThereAreEvals implements engine.Engine.
func (c *Client) ThereAreEvals() bool {
	if c.local != nil {
		c.fastRT.Add(1)
		return c.local.ThereAreEvals()
	}
	rep := c.call(proto.KindThereAreEvals, nil)
	return rep != nil && rep.Bool
}

// Evaluate implements engine.Engine.
func (c *Client) Evaluate() {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.Evaluate()
		return
	}
	c.call(proto.KindEvaluate, nil)
}

// ThereAreUpdates implements engine.Engine.
func (c *Client) ThereAreUpdates() bool {
	if c.local != nil {
		c.fastRT.Add(1)
		return c.local.ThereAreUpdates()
	}
	rep := c.call(proto.KindThereAreUpdates, nil)
	return rep != nil && rep.Bool
}

// Update implements engine.Engine.
func (c *Client) Update() {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.Update()
		return
	}
	c.call(proto.KindUpdate, nil)
}

// EndStep implements engine.Engine.
func (c *Client) EndStep() {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.EndStep()
		return
	}
	c.call(proto.KindEndStep, nil)
}

// End implements engine.Engine.
func (c *Client) End() {
	if c.local != nil {
		c.fastRT.Add(1)
		c.local.End()
		return
	}
	c.call(proto.KindEnd, nil)
}

// UsageDelta implements engine.UsageReporter: the wrapped engine's own
// meter on the fast path, or work accumulated from reply envelopes
// (plus transport messages) for remote engines.
func (c *Client) UsageDelta() engine.Usage {
	if c.local != nil {
		if ur, ok := c.local.(engine.UsageReporter); ok {
			return ur.UsageDelta()
		}
		return engine.Usage{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	u := c.pending
	c.pending = engine.Usage{}
	return u
}
