package transport

import (
	"testing"
	"time"

	"cascade/internal/obsv"
)

// TestTCPDeadlineClearedAfterIdle is the regression test for the
// per-call deadline leak: Roundtrip arms a read/write deadline for the
// call and must disarm it on success, so a connection that then sits
// idle longer than CallTimeout (a REPL user thinking, a runtime busy in
// software) carries no stale deadline into its next round-trip. The next
// call must succeed on the same connection without burning a drop or a
// retry from the budget.
func TestTCPDeadlineClearedAfterIdle(t *testing.T) {
	_, addr := loopbackHost(t, HostOptions{DisableJIT: true})
	obs := obsv.New(obsv.Options{})
	tcpT, err := DialTCP(addr, TCPOptions{
		CallTimeout: 150 * time.Millisecond,
		Retries:     1,
		Observer:    obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcpT.Close()
	rec := &recorder{}
	c, err := Spawn(tcpT, SpawnSpec{Path: "main.c", Source: ctrSrc}, rec, nil, nil, rec.onErr)
	if err != nil {
		t.Fatal(err)
	}
	drive(c, 1)
	if c.Err() != nil {
		t.Fatalf("pre-idle round-trips failed: %v", c.Err())
	}
	before := tcpT.Stats()

	// Idle well past CallTimeout: the deadline armed by the last call
	// would have expired by now if it were still on the conn.
	time.Sleep(400 * time.Millisecond)

	drive(c, 1)
	if c.Err() != nil {
		t.Fatalf("round-trip after idle gap failed: %v", c.Err())
	}
	if len(rec.errs) != 0 {
		t.Fatalf("transport errors surfaced: %v", rec.errs)
	}
	after := tcpT.Stats()
	if after.RoundTrips <= before.RoundTrips {
		t.Fatal("no round-trips performed after the idle gap; test is vacuous")
	}
	if after.Retries != 0 || after.Drops != 0 {
		t.Errorf("idle gap consumed the retry budget: %+v", after)
	}
	if got := obs.TransportErrors.Value(); got != 0 {
		t.Errorf("transport error counter = %d, want 0", got)
	}
	// Every successful round-trip records a wall RTT sample.
	if got := obs.TransportRTT.Count(); got != after.RoundTrips {
		t.Errorf("RTT histogram has %d samples, want %d (one per round-trip)",
			got, after.RoundTrips)
	}
}
