package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cascade/internal/elab"
	"cascade/internal/engine"
	"cascade/internal/engine/hweng"
	"cascade/internal/engine/sweng"
	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/obsv"
	"cascade/internal/persist"
	"cascade/internal/proto"
	"cascade/internal/toolchain"
	"cascade/internal/verilog"
)

// HostOptions configures an engine host.
type HostOptions struct {
	// Device is the host's own fabric (default: a fresh Cyclone V).
	// Remote engines are promoted onto it, not onto the runtime's.
	Device *fpga.Device
	// Toolchain compiles hosted subprograms (default: the standard
	// model over Device).
	Toolchain *toolchain.Toolchain
	// DisableJIT pins hosted engines to software even when a spawn
	// requests promotion.
	DisableJIT bool
	// Injector, when set, wires the host's fault surfaces (compiles,
	// bus, regions) exactly as runtime.Options.Injector does locally.
	Injector *fault.Injector
	// Observer, when set, receives the daemon-side lifecycle: spawns,
	// the host's own promotions and evictions, and (via the toolchain)
	// compile events — so cascade-engined can serve its own /metrics.
	// Events are stamped with the virtual clock the requesting runtime
	// ships in each request header.
	Observer *obsv.Observer
	// DefaultSessionQuotaLEs is the fabric region granted to a
	// session-open request that does not name a quota. Default: a
	// quarter of the host device.
	DefaultSessionQuotaLEs int
	// CompileWorker enables the compile-farm service: the daemon hosts
	// the worker side of compile flows (KindCompileSubmit and the cache
	// kinds) against its toolchain's cache stack, so remote FarmBackends
	// can shard flows onto it.
	CompileWorker bool
	// Peers lists sibling compile workers' addresses. A submission that
	// misses this worker's memory and disk tiers consults the peers
	// before paying for place-and-route — the replicated-cache fetch
	// path. Dials are lazy and failures are misses, so daemons start in
	// any order.
	Peers []string
	// PeerDial tunes the peer-fetch connections (zero value: defaults).
	PeerDial TCPOptions
}

// Host is the serving side of the engine protocol: the core of
// cmd/cascade-engined, and directly embeddable for loopback tests. It
// keeps a registry of hosted engines keyed by the IDs it assigns at
// spawn, executes ABI requests against them, and — when a spawn asks
// for it — JIT-promotes hosted software engines onto its own fabric in
// the background, flipping the location the reply envelopes advertise.
type Host struct {
	opts HostOptions

	// epoch is this host's boot epoch, stamped into every reply. It is
	// nonzero and differs between host instances, so a transport that
	// reconnects after a daemon restart sees the change and can refuse
	// to run against journal-resumed (stale) engine state. Wall-clock
	// derived, which is fine: hosts are outside the runtime's
	// virtual-time determinism contract, and clients react only to
	// "changed", never to the value.
	epoch uint32

	// worker is the compile-farm service (nil unless CompileWorker).
	worker *toolchain.Worker

	mu       sync.Mutex
	nextID   uint32
	nextSess uint32
	engines  map[uint32]*hosted
	sessions map[uint32]*hostSession

	// Session-resumption journal (EnableJournal). Guarded by jmu, not
	// h.mu: appends happen on serving goroutines after the registry
	// mutation they record.
	jmu       sync.Mutex
	jr        *persist.Journal
	jseq      uint64
	replaying bool
}

// hostSession is one daemon-side tenant: a region carved out of the
// host fabric for the session's lifetime, a private device of exactly
// that size its engines promote onto, and a tenant registration on the
// shared toolchain scoping compile stats, cache keys, and fair share.
// Unlike the in-process hypervisor, daemon sessions are purely spatial:
// opening one fails when the fabric has no room rather than queueing.
type hostSession struct {
	id     uint32
	tenant string
	dev    *fpga.Device
}

// hosted is one engine and its host-side bookkeeping.
type hosted struct {
	mu   sync.Mutex
	e    engine.Engine
	io   *bufIO
	now  atomic.Uint64 // $time feed, updated from request headers
	flat *elab.Flat
	job  *toolchain.Job // pending background promotion
	path string
	area int

	// Session binding: promotions land on dev (the owning session's
	// region-sized device, or the whole host fabric when sessionless) and
	// compiles are scoped to tenant on the shared toolchain.
	dev     *fpga.Device
	tenant  string
	session uint32
}

// bufIO buffers an engine's IO events for piggybacking on replies.
type bufIO struct {
	mu  sync.Mutex
	evs []proto.IOEvent
}

// Display implements engine.IOHandler.
func (b *bufIO) Display(text string, newline bool) {
	b.mu.Lock()
	b.evs = append(b.evs, proto.IOEvent{Kind: proto.IODisplay, Text: text, Newline: newline})
	b.mu.Unlock()
}

// Finish implements engine.IOHandler.
func (b *bufIO) Finish(code int) {
	b.mu.Lock()
	b.evs = append(b.evs, proto.IOEvent{Kind: proto.IOFinish, Code: code})
	b.mu.Unlock()
}

func (b *bufIO) drain() []proto.IOEvent {
	b.mu.Lock()
	evs := b.evs
	b.evs = nil
	b.mu.Unlock()
	return evs
}

// NewHost builds an engine host.
func NewHost(opts HostOptions) *Host {
	if opts.Device == nil {
		opts.Device = fpga.NewCycloneV()
	}
	if opts.Toolchain == nil {
		opts.Toolchain = toolchain.New(opts.Device, toolchain.DefaultOptions())
	}
	if opts.Injector != nil {
		opts.Toolchain.SetFaults(opts.Injector)
		opts.Device.SetFaults(opts.Injector)
	}
	if opts.Observer != nil {
		opts.Toolchain.SetObserver(opts.Observer)
		if opts.Injector != nil {
			opts.Injector.SetObserver(opts.Observer)
		}
	}
	if opts.DefaultSessionQuotaLEs <= 0 {
		opts.DefaultSessionQuotaLEs = opts.Device.Capacity() / 4
	}
	h := &Host{
		opts:     opts,
		epoch:    newEpoch(),
		engines:  map[uint32]*hosted{},
		sessions: map[uint32]*hostSession{},
	}
	if opts.CompileWorker {
		h.worker = toolchain.NewWorker(opts.Toolchain)
		if len(opts.Peers) > 0 {
			// Fetch-only: a worker never writes through to its peers
			// (the submitting farm replicates explicitly), so the ring
			// cannot loop.
			h.worker.SetPeerTier(newPeerRing(opts.Peers, opts.PeerDial).Lookup, nil)
		}
	}
	return h
}

// epochSeq breaks ties between hosts built in the same nanosecond (the
// loopback tests build several per process).
var epochSeq atomic.Uint32

// newEpoch derives a nonzero boot epoch distinct from any other host
// this process — or a quickly restarted predecessor — produced.
func newEpoch() uint32 {
	for {
		e := uint32(time.Now().UnixNano()) ^ (epochSeq.Add(1) * 0x9e3779b9)
		if e != 0 {
			return e
		}
	}
}

// Handle executes one protocol request, filling rep. Transport servers
// (and loopback tests) call it once per decoded frame; it never
// panics on hostile input — unknown engines and bad spawns surface
// through rep.Err.
func (h *Host) Handle(req *proto.Request, rep *proto.Reply) {
	*rep = proto.Reply{Kind: req.Kind, Engine: req.Engine, Epoch: h.epoch}
	switch req.Kind {
	case proto.KindPing:
		// Liveness probe: answer before any engine or session lookup,
		// so the reply measures daemon reachability and nothing else.
		return
	case proto.KindSpawn:
		h.spawn(req, rep, 0)
		return
	case proto.KindSessionOpen:
		h.sessionOpen(req, rep, 0)
		return
	case proto.KindSessionClose:
		h.sessionClose(req, rep)
		return
	case proto.KindCompileSubmit, proto.KindCompileStatus, proto.KindCompileCancel,
		proto.KindCacheFetch, proto.KindCachePut:
		h.handleFarm(req, rep)
		return
	}
	h.mu.Lock()
	hd := h.engines[req.Engine]
	h.mu.Unlock()
	if hd == nil {
		rep.Err = fmt.Sprintf("unknown engine %d", req.Engine)
		return
	}
	hd.mu.Lock()
	defer hd.mu.Unlock()
	hd.now.Store(req.Now)
	e := hd.e
	switch req.Kind {
	case proto.KindRead:
		e.Read(engine.Event{Var: req.Var, Val: req.Val})
	case proto.KindDrainWrites:
		rep.Events = e.DrainWrites()
	case proto.KindThereAreEvals:
		rep.Bool = e.ThereAreEvals()
	case proto.KindEvaluate:
		e.Evaluate()
	case proto.KindThereAreUpdates:
		rep.Bool = e.ThereAreUpdates()
	case proto.KindUpdate:
		e.Update()
	case proto.KindGetState:
		rep.State = e.GetState()
	case proto.KindSetState:
		if req.State != nil {
			e.SetState(req.State)
			h.journalReq(req, 0)
		}
	case proto.KindEndStep:
		e.EndStep()
		h.serviceJIT(hd, req.VNow)
	case proto.KindEnd:
		e.End()
		if hw, ok := hd.e.(*hweng.Engine); ok {
			hw.Release()
		}
		h.mu.Lock()
		delete(h.engines, req.Engine)
		h.mu.Unlock()
		h.journalReq(req, 0)
	default:
		rep.Err = fmt.Sprintf("unsupported request kind %d", req.Kind)
		return
	}
	h.finishReply(hd, rep)
}

// finishReply stamps the envelope: location, metered work, buffered IO.
func (h *Host) finishReply(hd *hosted, rep *proto.Reply) {
	rep.Loc = hd.e.Loc()
	if ur, ok := hd.e.(engine.UsageReporter); ok {
		rep.Usage = ur.UsageDelta()
	}
	rep.IO = hd.io.drain()
}

// spawn parses and elaborates the shipped source, builds a software
// engine, and (when requested) submits its background compilation.
// forced, when non-zero, pins the assigned engine ID (journal replay
// re-creating an engine under the ID the original client holds).
func (h *Host) spawn(req *proto.Request, rep *proto.Reply, forced uint32) {
	mods, items, errs := verilog.ParseProgramFragment(req.Source)
	if len(errs) > 0 {
		rep.Err = fmt.Sprintf("parse spawn source: %v", errs[0])
		return
	}
	if len(mods) != 1 || len(items) != 0 {
		rep.Err = fmt.Sprintf("spawn source must be exactly one module declaration (got %d modules, %d items)",
			len(mods), len(items))
		return
	}
	flat, err := elab.Elaborate(mods[0], req.Path, req.Params)
	if err != nil {
		rep.Err = fmt.Sprintf("elaborate %s: %v", req.Path, err)
		return
	}
	hd := &hosted{io: &bufIO{}, flat: flat, path: req.Path,
		dev: h.opts.Device, session: req.Session}
	if req.Session != 0 {
		h.mu.Lock()
		sess := h.sessions[req.Session]
		h.mu.Unlock()
		if sess == nil {
			rep.Err = fmt.Sprintf("unknown session %d", req.Session)
			return
		}
		hd.dev = sess.dev
		hd.tenant = sess.tenant
	}
	hd.now.Store(req.Now)
	nowFn := func() uint64 { return hd.now.Load() }
	hd.e = sweng.New(flat, hd.io, nowFn, req.Eager)
	if req.JIT && !h.opts.DisableJIT {
		hd.job = h.opts.Toolchain.SubmitTenant(context.Background(), hd.tenant, flat, true, req.VNow)
	}
	h.mu.Lock()
	var id uint32
	if forced != 0 {
		id = forced
		if id > h.nextID {
			h.nextID = id
		}
	} else {
		h.nextID++
		id = h.nextID
	}
	h.engines[id] = hd
	h.mu.Unlock()
	h.opts.Observer.EmitAt(req.VNow, obsv.EvSpawn, req.Path,
		fmt.Sprintf("hosted engine %d jit=%v", id, req.JIT && !h.opts.DisableJIT))
	rep.Engine = id
	h.journalReq(req, id)
	h.finishReply(hd, rep)
}

// sessionOpen carves a tenant session out of the host: a fabric region
// of the requested quota (held for the session's lifetime), a private
// device of that size its engines promote onto, and a toolchain tenant
// registration scoping compile stats, cache namespace, and fair share.
// forced, when non-zero, pins the session ID (journal replay).
func (h *Host) sessionOpen(req *proto.Request, rep *proto.Reply, forced uint32) {
	quota := int(req.Quota)
	if quota <= 0 {
		quota = h.opts.DefaultSessionQuotaLEs
	}
	h.mu.Lock()
	var id uint32
	if forced != 0 {
		id = forced
		if id > h.nextSess {
			h.nextSess = id
		}
	} else {
		h.nextSess++
		id = h.nextSess
	}
	tenant := req.Path
	if tenant == "" {
		tenant = fmt.Sprintf("s%d", id)
	}
	for _, s := range h.sessions {
		if s.tenant == tenant {
			h.mu.Unlock()
			rep.Err = fmt.Sprintf("session name %q already open", tenant)
			return
		}
	}
	h.mu.Unlock()
	if err := h.opts.Device.Place("session:"+tenant, quota); err != nil {
		rep.Err = fmt.Sprintf("open session %s: %v", tenant, err)
		return
	}
	sess := &hostSession{id: id, tenant: tenant,
		dev: fpga.NewDevice(quota, h.opts.Device.ClockHz())}
	h.opts.Toolchain.RegisterTenant(tenant, int(req.Share), sess.dev)
	h.mu.Lock()
	h.sessions[id] = sess
	h.mu.Unlock()
	h.opts.Observer.EmitAt(req.VNow, obsv.EvSpawn, tenant,
		fmt.Sprintf("session %d open quota=%dLEs share=%d", id, quota, req.Share))
	rep.Engine = id
	h.journalReq(req, id)
}

// sessionClose tears a session down: ends every engine it owns,
// releases its fabric region, and unregisters its toolchain tenant.
func (h *Host) sessionClose(req *proto.Request, rep *proto.Reply) {
	h.mu.Lock()
	sess := h.sessions[req.Session]
	if sess == nil {
		h.mu.Unlock()
		rep.Err = fmt.Sprintf("unknown session %d", req.Session)
		return
	}
	delete(h.sessions, req.Session)
	var owned []*hosted
	for id, hd := range h.engines {
		if hd.session == req.Session {
			owned = append(owned, hd)
			delete(h.engines, id)
		}
	}
	h.mu.Unlock()
	for _, hd := range owned {
		hd.mu.Lock()
		hd.e.End()
		if hw, ok := hd.e.(*hweng.Engine); ok {
			hw.Release()
		}
		hd.mu.Unlock()
	}
	h.opts.Device.Release("session:" + sess.tenant)
	h.opts.Toolchain.UnregisterTenant(sess.tenant)
	h.opts.Observer.EmitAt(req.VNow, obsv.EvSpawn, sess.tenant,
		fmt.Sprintf("session %d closed (%d engines ended)", sess.id, len(owned)))
	h.journalReq(req, 0)
}

// handleFarm serves the compile-farm kinds against the daemon's worker
// service. A daemon not started as a compile worker answers every farm
// kind with a reply-level error (the client's breaker treats it like
// any shard failure).
func (h *Host) handleFarm(req *proto.Request, rep *proto.Reply) {
	if h.worker == nil {
		rep.Err = "daemon is not a compile worker (start cascade-engined with -compile-worker)"
		return
	}
	f := req.Farm
	if f == nil {
		rep.Err = "farm request missing payload"
		return
	}
	switch req.Kind {
	case proto.KindCompileSubmit:
		h.opts.Observer.EmitAt(req.VNow, obsv.EvCompileSubmit, f.Name,
			fmt.Sprintf("farm worker flow wrapped=%v", f.Wrapped))
		out := h.worker.Compile(toolchain.ShardSubmit{
			Key: f.Key, Name: f.Name, Wrapped: f.Wrapped,
			SubmitPs: f.SubmitPs, BackoffPs: f.BackoffPs,
			Cells: f.Cells, FFs: f.FFs, MemBits: f.MemBits, CritPath: f.CritPath,
		})
		rep.Farm = &proto.FarmResult{
			AreaLEs: out.AreaLEs, RawAreaLEs: out.RawAreaLEs, CritPath: out.CritPath,
			DurationPs: out.DurationPs, CacheHit: out.CacheHit, HitSource: out.HitSource,
			FlowErr: out.FlowErr,
		}
	case proto.KindCompileStatus:
		meta, ok := h.worker.Status(f.Key)
		rep.Farm = &proto.FarmResult{Found: ok, AreaLEs: meta.AreaLEs,
			RawAreaLEs: meta.RawAreaLEs, CritPath: meta.CritPath}
	case proto.KindCompileCancel:
		// Deliberate acknowledgement without action: like Job.Cancel, a
		// cancelled flow still runs to completion so its bitstream
		// reaches the cache — cancellation drops the subscription, never
		// the artifact.
		rep.Farm = &proto.FarmResult{}
	case proto.KindCacheFetch:
		meta, ok := h.worker.Fetch(f.Key)
		rep.Farm = &proto.FarmResult{Found: ok, AreaLEs: meta.AreaLEs,
			RawAreaLEs: meta.RawAreaLEs, CritPath: meta.CritPath}
	case proto.KindCachePut:
		h.worker.Put(toolchain.BitMeta{Key: f.Key, AreaLEs: f.AreaLEs,
			RawAreaLEs: f.RawAreaLEs, CritPath: f.CritPath}, f.Publish)
		rep.Farm = &proto.FarmResult{}
	}
}

// Sessions returns the number of currently open sessions.
func (h *Host) Sessions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

// hostJournalRequest is the single journal record kind: the payload is
// a proto-encoded Request, with the host-assigned ID stuffed into the
// Engine field for spawn/session-open so replay can pin it.
const hostJournalRequest byte = 1

// EnableJournal arms session resumption: registry-mutating requests
// (session-open/close, spawn, set-state, end) are journaled via
// internal/persist, and any records already in the file are replayed
// first — sessions re-open their fabric regions and tenants, engines
// respawn from their journaled source under the *same* IDs the
// original clients hold, and the last journaled state reinstalls. A
// client that reconnects after the daemon was SIGKILLed therefore
// re-binds to live engines instead of erroring with "unknown engine";
// state written since the last SetState is re-seeded by the client's
// supervisor on re-host rather than recovered here.
//
// Call it once, before serving. It returns the number of sessions and
// engines resumed from the journal.
func (h *Host) EnableJournal(path string) (sessions, engines int, err error) {
	jr, recs, err := persist.OpenJournal(path)
	if err != nil {
		return 0, 0, err
	}
	h.replaying = true
	for _, rec := range recs {
		if rec.Kind != hostJournalRequest {
			continue
		}
		req, derr := proto.DecodeRequest(rec.Data)
		if derr != nil {
			continue // a record from an older protocol: skip, keep going
		}
		h.replayReq(req)
	}
	h.replaying = false
	h.jmu.Lock()
	h.jr = jr
	h.jseq = jr.LastSeq()
	h.jmu.Unlock()
	return h.Sessions(), h.Engines(), nil
}

// replayReq re-executes one journaled request against the fresh
// registry. Replies are discarded: a record that no longer applies
// (e.g. the fabric shrank) is skipped, never fatal.
func (h *Host) replayReq(req *proto.Request) {
	var rep proto.Reply
	switch req.Kind {
	case proto.KindSpawn:
		rep = proto.Reply{Kind: req.Kind}
		h.spawn(req, &rep, req.Engine)
	case proto.KindSessionOpen:
		rep = proto.Reply{Kind: req.Kind}
		h.sessionOpen(req, &rep, req.Engine)
	case proto.KindSetState, proto.KindEnd, proto.KindSessionClose:
		h.Handle(req, &rep)
	}
}

// journalReq appends one registry-mutating request to the journal (if
// armed). assigned, when non-zero, replaces req.Engine in the record
// so replay can pin the host-assigned ID.
func (h *Host) journalReq(req *proto.Request, assigned uint32) {
	h.jmu.Lock()
	defer h.jmu.Unlock()
	if h.jr == nil || h.replaying {
		return
	}
	jc := *req
	if assigned != 0 {
		jc.Engine = assigned
	}
	h.jseq++
	if err := h.jr.Append(h.jseq, hostJournalRequest, proto.EncodeRequest(nil, &jc)); err != nil {
		return
	}
	h.jr.Sync()
}

// CloseJournal syncs and closes the resumption journal, if armed.
func (h *Host) CloseJournal() error {
	h.jmu.Lock()
	defer h.jmu.Unlock()
	if h.jr == nil {
		return nil
	}
	err := h.jr.Close()
	h.jr = nil
	return err
}

// serviceJIT runs the host-side slice of the Figure-9 state machine for
// one engine at a step boundary: promote a finished compilation onto
// the host's fabric, or evict a faulted hardware engine back to
// software (resubmitting the compile). Callers hold hd.mu.
func (h *Host) serviceJIT(hd *hosted, vnow uint64) {
	if hw, ok := hd.e.(*hweng.Engine); ok && hw.Fault() != nil {
		if o := h.opts.Observer; o != nil {
			o.EmitAt(vnow, obsv.EvEviction, hd.path, fmt.Sprintf("host hw->sw: %v", hw.Fault()))
			o.Evictions.Inc()
		}
		st := hw.GetState()
		hw.Release()
		sw := sweng.New(hd.flat, hd.io, func() uint64 { return hd.now.Load() }, false)
		// Initial blocks re-ran at construction; the runtime side saw
		// that output when the engine first spawned, so drop it.
		hd.io.drain()
		sw.SetState(st)
		hd.e = sw
		if hd.job == nil {
			hd.job = h.opts.Toolchain.SubmitTenant(context.Background(), hd.tenant, hd.flat, true, vnow)
		}
		return
	}
	job := hd.job
	if job == nil || !job.Ready(vnow) {
		return
	}
	hd.job = nil
	res := job.Result()
	if res.Err != nil {
		if errors.Is(res.Err, toolchain.ErrOverloaded) || errors.Is(res.Err, toolchain.ErrShardUnavailable) {
			// Load-shed or farm outage, not a verdict on the design:
			// resubmit now and let the next step boundary re-check
			// readiness — a per-step virtual backoff until the queue
			// drains (or a shard comes back).
			hd.job = h.opts.Toolchain.SubmitTenant(context.Background(), hd.tenant, hd.flat, true, vnow)
		}
		return // stay in software; a hosted engine never kills the run
	}
	sw, ok := hd.e.(*sweng.Engine)
	if !ok {
		return
	}
	nowFn := func() uint64 { return hd.now.Load() }
	hw, err := hweng.New(hd.path, res.Prog, hd.dev, res.AreaLEs, hd.io, false, nowFn)
	if err != nil {
		return // no fabric room (or a placement fault): stay in software
	}
	hw.SetState(sw.GetState())
	sw.End()
	hd.e = hw
	hd.area = res.AreaLEs
	if o := h.opts.Observer; o != nil {
		o.EmitAt(vnow, obsv.EvHotSwap, hd.path, fmt.Sprintf("host sw->hw area=%dLEs", res.AreaLEs))
		o.Promotions.Inc()
	}
}

// Engines returns the number of currently hosted engines.
func (h *Host) Engines() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.engines)
}

// ServeListener accepts connections until the listener closes, serving
// each on its own goroutine. All connections share the host's engine
// registry, so a runtime that reconnects finds its engines intact.
func (h *Host) ServeListener(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go h.ServeConn(conn)
	}
}

// ServeConn runs the frame loop on one connection: read a request
// frame, execute it, write the reply frame. It returns when the peer
// disconnects or sends bytes that do not decode (a desynchronized
// stream cannot be re-synchronized, so the connection drops and the
// client's retry path redials).
func (h *Host) ServeConn(conn net.Conn) {
	defer conn.Close()
	var rbuf, wbuf []byte
	var rep proto.Reply
	for {
		payload, err := proto.ReadFrame(conn, rbuf)
		if err != nil {
			return
		}
		rbuf = payload[:cap(payload)]
		req, err := proto.DecodeRequest(payload)
		if err != nil {
			return
		}
		h.Handle(req, &rep)
		wbuf = wbuf[:0]
		wbuf = append(wbuf, 0, 0, 0, 0)
		wbuf = proto.EncodeReply(wbuf, &rep)
		n := len(wbuf) - 4
		if n > proto.MaxFrame {
			return
		}
		wbuf[0] = byte(n)
		wbuf[1] = byte(n >> 8)
		wbuf[2] = byte(n >> 16)
		wbuf[3] = byte(n >> 24)
		if _, err := conn.Write(wbuf); err != nil {
			return
		}
	}
}
