package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cascade/internal/fault"
	"cascade/internal/obsv"
	"cascade/internal/proto"
)

// TCPOptions tunes a TCP transport.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 3s).
	DialTimeout time.Duration
	// CallTimeout bounds each round-trip, send to reply (default 10s).
	CallTimeout time.Duration
	// Retries is how many additional attempts a failed round-trip gets
	// before the error is surfaced (default 2). Each retry reconnects.
	Retries int
	// ProbeTimeout bounds the liveness ping sent on every reconnect
	// (default 1s, clamped to CallTimeout). A dial can succeed against
	// a dead peer — the kernel completes the handshake and then the
	// socket just never answers — so each fresh connection is probed
	// under this short deadline before the real request is resent;
	// without it one dead socket costs a full CallTimeout per retry.
	ProbeTimeout time.Duration
	// Injector, when set, is consulted once per attempt: an injected
	// drop loses the frame before transmission (deterministically, so
	// fault runs replay) and counts against the attempt budget.
	Injector *fault.Injector
	// Observer, when set, records wall-clock round-trip latency and
	// drop/retry/error counters, and traces round-trips that fail after
	// the retry budget. Nil costs nothing.
	Observer *obsv.Observer
}

func (o *TCPOptions) fill() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.ProbeTimeout > o.CallTimeout {
		o.ProbeTimeout = o.CallTimeout
	}
}

// TCP is a framed connection to a remote engine daemon. One TCP
// transport multiplexes every engine the runtime hosts at that address;
// round-trips are serialized on the connection (the protocol is
// strictly request/reply), mirroring the serialized memory-mapped bus
// the virtual-time model bills.
type TCP struct {
	addr string
	opts TCPOptions
	site string // fault-injection site name

	mu   sync.Mutex // serializes round-trips on the connection
	conn net.Conn
	wbuf []byte
	rbuf []byte
	// epoch latches the first nonzero boot epoch seen in a reply. A
	// later reply carrying a different epoch means the daemon restarted
	// between round-trips; the call fails with ErrDaemonRestarted (and
	// the latch moves to the new epoch, so post-failover probes reach
	// the reborn daemon cleanly). Guarded by mu.
	epoch uint32

	stMu    sync.Mutex
	statsSn Stats // cumulative counters, guarded by stMu for concurrent Stats()
}

// DialTCP connects to a remote engine daemon. The initial dial is
// eager so a bad address fails fast; later disconnects redial lazily.
func DialTCP(addr string, opts TCPOptions) (*TCP, error) {
	opts.fill()
	t := &TCP{addr: addr, opts: opts, site: "tcp:" + addr}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	t.conn = conn
	return t, nil
}

// Kind implements Transport.
func (t *TCP) Kind() string { return "tcp" }

// Addr returns the daemon address.
func (t *TCP) Addr() string { return t.addr }

// Stats implements Transport.
func (t *TCP) Stats() Stats {
	t.stMu.Lock()
	defer t.stMu.Unlock()
	return t.statsSn
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		err := t.conn.Close()
		t.conn = nil
		return err
	}
	return nil
}

// Roundtrip implements Transport: encode, frame, send, await the reply
// frame, decode. Failed attempts (injected drops, IO errors, decode
// errors) reconnect and retry until the budget runs out.
func (t *TCP) Roundtrip(req *proto.Request, rep *proto.Reply) (Cost, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	obs := t.opts.Observer
	var rttStart time.Time
	if obs != nil {
		rttStart = obs.WallNow()
	}
	var cost Cost
	var lastErr error
	for attempt := 0; attempt <= t.opts.Retries; attempt++ {
		if attempt > 0 {
			cost.Retries++
		}
		if err := t.opts.Injector.Net(t.site); err != nil {
			// The frame is dropped before it leaves the host: nothing
			// reached the daemon, so resending cannot duplicate side
			// effects. The connection itself is fine.
			cost.Drops++
			lastErr = err
			continue
		}
		c, err := t.attempt(req, rep, &cost)
		if err == nil {
			// The per-call deadline must not outlive the call: the conn is
			// shared and long-lived, and an armed deadline from this
			// round-trip would fire mid-write on the next one after an
			// idle gap longer than CallTimeout (TestTCPDeadlineClearedAfterIdle).
			if derr := c.SetDeadline(time.Time{}); derr != nil {
				// The call itself succeeded; a failed disarm means the
				// conn is going bad — drop it so the next call redials.
				c.Close()
				t.conn = nil
			}
			t.settle(cost, true)
			if obs != nil {
				if ns := obs.WallNow().Sub(rttStart).Nanoseconds(); ns > 0 {
					obs.TransportRTT.Observe(uint64(ns))
				} else {
					obs.TransportRTT.Observe(0) // pinned test clock
				}
				obs.TransportDrops.Add(cost.Drops)
				obs.TransportRetry.Add(cost.Retries)
			}
			return cost, nil
		}
		lastErr = err
		if c != nil {
			c.Close()
		}
		t.conn = nil // force redial on the next attempt
		if errors.Is(err, ErrDaemonRestarted) {
			// Fail fast, never retry: the latch already moved to the new
			// epoch, so a retry WOULD succeed — against journal-resumed
			// state missing everything since the last snapshot. Surfacing
			// the typed error is the whole point; the supervisor fails
			// over from its committed state instead.
			break
		}
	}
	t.settle(cost, false)
	err := fmt.Errorf("transport: %s: round-trip failed after %d attempts: %w: %w",
		t.addr, t.opts.Retries+1, ErrEngineUnavailable, lastErr)
	if obs != nil {
		obs.TransportErrors.Inc()
		obs.TransportDrops.Add(cost.Drops)
		obs.TransportRetry.Add(cost.Retries)
		// Stamped with the caller's virtual clock from the request
		// header (0 for un-clocked callers); Roundtrip runs on worker
		// goroutines, so Emit is off-limits.
		obs.EmitAt(req.VNow, obsv.EvTransportError, t.site, err.Error())
	}
	return cost, err
}

// attempt performs one send/receive on the current (or a fresh)
// connection, accounting bytes into cost.
func (t *TCP) attempt(req *proto.Request, rep *proto.Reply, cost *Cost) (net.Conn, error) {
	if t.conn == nil {
		conn, err := net.DialTimeout("tcp", t.addr, t.opts.DialTimeout)
		if err != nil {
			return nil, err
		}
		// A successful dial proves nothing about the peer: the kernel
		// completes the handshake even if the daemon died an instant
		// later (a half-open socket). Ping it under the short probe
		// deadline before spending a full CallTimeout on the real
		// request — a dead reconnect now fails at probe cost.
		if err := t.probe(conn, req.VNow, cost); err != nil {
			conn.Close()
			return nil, err
		}
		t.conn = conn
	}
	c := t.conn
	deadline := time.Now().Add(t.opts.CallTimeout)
	if err := c.SetDeadline(deadline); err != nil {
		return c, err
	}
	if err := t.writeFrame(c, req, cost); err != nil {
		return c, err
	}
	return c, t.readReply(c, rep, cost)
}

// probe sends one KindPing round-trip on a freshly dialed connection
// under ProbeTimeout. Probe traffic counts into cost's byte totals
// (it is real wire traffic) but carries no engine payload.
func (t *TCP) probe(c net.Conn, vnow uint64, cost *Cost) error {
	if err := c.SetDeadline(time.Now().Add(t.opts.ProbeTimeout)); err != nil {
		return err
	}
	ping := proto.Request{Kind: proto.KindPing, VNow: vnow}
	if err := t.writeFrame(c, &ping, cost); err != nil {
		return fmt.Errorf("reconnect probe: %w", err)
	}
	var pong proto.Reply
	if err := t.readReply(c, &pong, cost); err != nil {
		return fmt.Errorf("reconnect probe: %w", err)
	}
	return nil
}

// writeFrame encodes req and writes it as one length-prefixed frame.
func (t *TCP) writeFrame(c net.Conn, req *proto.Request, cost *Cost) error {
	t.wbuf = t.wbuf[:0]
	t.wbuf = append(t.wbuf, 0, 0, 0, 0)
	t.wbuf = proto.EncodeRequest(t.wbuf, req)
	payload := len(t.wbuf) - 4
	if payload > proto.MaxFrame {
		return proto.ErrFrameTooLarge
	}
	t.wbuf[0] = byte(payload)
	t.wbuf[1] = byte(payload >> 8)
	t.wbuf[2] = byte(payload >> 16)
	t.wbuf[3] = byte(payload >> 24)
	if _, err := c.Write(t.wbuf); err != nil {
		return err
	}
	cost.BytesOut += uint64(len(t.wbuf))
	return nil
}

// readReply reads one reply frame and decodes it into rep.
func (t *TCP) readReply(c net.Conn, rep *proto.Reply, cost *Cost) error {
	buf, err := proto.ReadFrame(c, t.rbuf)
	if err != nil {
		return err
	}
	t.rbuf = buf[:cap(buf)]
	cost.BytesIn += uint64(len(buf) + 4)
	if err := proto.DecodeReply(buf, rep); err != nil {
		return err
	}
	return t.checkEpoch(rep.Epoch)
}

// checkEpoch latches the host's boot epoch and detects restarts. Every
// decoded reply passes through here — probe pongs included, so a
// restart is caught on the very first frame after a reconnect.
func (t *TCP) checkEpoch(e uint32) error {
	if e == 0 || e == t.epoch {
		return nil
	}
	if t.epoch == 0 {
		t.epoch = e
		return nil
	}
	prev := t.epoch
	t.epoch = e
	return fmt.Errorf("boot epoch changed %d -> %d: %w", prev, e, ErrDaemonRestarted)
}

// settle folds one call's cost into the cumulative stats snapshot.
func (t *TCP) settle(cost Cost, ok bool) {
	t.stMu.Lock()
	defer t.stMu.Unlock()
	if ok {
		t.statsSn.RoundTrips++
	}
	t.statsSn.BytesOut += cost.BytesOut
	t.statsSn.BytesIn += cost.BytesIn
	t.statsSn.Drops += cost.Drops
	t.statsSn.Retries += cost.Retries
}
