// Package cascade is a JIT compiler and runtime for Verilog, a Go
// reproduction of "Just-in-Time Compilation for Verilog: A New Technique
// for Improving the FPGA Programming Experience" (Schkufza, Wei,
// Rossbach — ASPLOS 2019).
//
// Code eval'd into a Runtime begins executing immediately in a software
// simulator while a (virtual) vendor toolchain compiles a hardware
// engine in the background; when it finishes, execution migrates onto
// the simulated FPGA and simply gets faster — printf debugging, IO side
// effects on the virtual peripheral board, and mid-run code additions
// keep working throughout.
//
// Quick start:
//
//	rt := cascade.New() // paper-calibrated defaults; see Option for knobs
//	rt.MustEval(cascade.DefaultPrelude) // Clock clk; Pad#(4) pad; Led#(8) led
//	rt.MustEval(`
//	    reg [7:0] cnt = 1;
//	    always @(posedge clk.val) cnt <= (cnt == 8'h80) ? 1 : (cnt << 1);
//	    assign led.val = cnt;
//	`)
//	rt.RunTicks(1000)
//	fmt.Printf("leds: %08b, engine: %v\n", rt.World().Led("main.led"), rt.Phase())
//
// Runtimes are configured with functional options (cascade.WithDevice,
// cascade.WithParallelism, cascade.DisableOpenLoop, …); an Options
// struct literal works too, via NewWithOptions. Stats returns a stable
// snapshot of the runtime's status, and EvalCtx/RunTicksCtx accept a
// context for cancellation — cancelling aborts in-flight background
// compilations.
//
// The package is a thin facade over the implementation in internal/:
// see internal/runtime (scheduler and JIT state machine), internal/sim
// (reference event-driven interpreter), internal/netlist (synthesis and
// the compiled evaluator), internal/toolchain and internal/fpga (the
// blackbox vendor-flow and device models), and internal/repl (the
// interactive interface).
package cascade

import (
	"io"

	"cascade/internal/fault"
	"cascade/internal/fpga"
	"cascade/internal/hyper"
	"cascade/internal/obsv"
	"cascade/internal/repl"
	"cascade/internal/runtime"
	"cascade/internal/stdlib"
	"cascade/internal/supervise"
	"cascade/internal/toolchain"
	"cascade/internal/transport"
	"cascade/internal/vclock"
)

// Core types, re-exported.
type (
	// Runtime executes one Cascade program (paper §3.4).
	Runtime = runtime.Runtime
	// Options configures a Runtime; construct one directly for
	// NewWithOptions or let the functional options fill one in.
	Options = runtime.Options
	// Features holds the ablation and mode switches (zero value = full JIT).
	Features = runtime.Features
	// Stats is a stable status snapshot (phase, engine locations,
	// virtual-time breakdown, compile-cache counters).
	Stats = runtime.Stats
	// EngineStat describes one scheduled engine inside Stats.
	EngineStat = runtime.EngineStat
	// CompileStats counts the toolchain job service's work (cache
	// hits/misses, joins, cancellations).
	CompileStats = toolchain.Stats
	// Phase is the JIT state of the program (paper Figure 9).
	Phase = runtime.Phase
	// View receives program output and runtime status.
	View = runtime.View
	// BufView is a View that records output (tests, tooling).
	BufView = runtime.BufView
	// World is the virtual peripheral board: buttons, LEDs, streams.
	World = stdlib.World
	// Device is the simulated FPGA.
	Device = fpga.Device
	// Toolchain is the blackbox vendor-compiler model.
	Toolchain = toolchain.Toolchain
	// ToolchainOptions tunes the compile-latency model.
	ToolchainOptions = toolchain.Options
	// TimeModel assigns virtual-time costs to runtime work.
	TimeModel = vclock.Model
	// REPL is the interactive read-eval-print interface (paper §3.1).
	REPL = repl.REPL
	// Snapshot is a portable capture of a running program (paper §9's
	// virtual-machine-migration direction): take one with
	// Runtime.Snapshot, ship it (EncodeSnapshot/DecodeSnapshot), and
	// Restore it onto a fresh runtime on another device.
	Snapshot = runtime.Snapshot
	// FaultInjector deterministically injects compile, bus, and region
	// faults (internal/fault); wire one in with WithFaultInjector to
	// exercise the runtime's degradation paths: transient compile
	// failures retry with virtual-time backoff, and a faulted hardware
	// engine is evicted back to software between steps.
	FaultInjector = fault.Injector
	// FaultConfig selects a fault schedule: a seed plus per-surface
	// probabilities and caps (probability 1 with a cap scripts exact
	// fault counts).
	FaultConfig = fault.Config
	// FaultStats counts the injector's decisions.
	FaultStats = fault.Stats
	// PersistOptions configures crash-safe persistence: the directory,
	// the checkpoint cadence, retention, and the journal fsync policy.
	PersistOptions = runtime.PersistOptions
	// PersistStats counts the persistence layer's work (journal
	// records, checkpoints, replay).
	PersistStats = runtime.PersistStats
	// RecoveryInfo describes what Open recovered from a persistence
	// directory: the checkpoint used, the journal records replayed, and
	// the resumed position.
	RecoveryInfo = runtime.RecoveryInfo
	// RemoteOptions configures the connection to a cascade-engined
	// daemon hosting the program's user engines (WithRemoteEngine).
	RemoteOptions = runtime.RemoteOptions
	// SuperviseOptions tunes the self-healing supervisor
	// (WithSupervision): probe cadence, breaker failure threshold, and
	// reopen timeout — all in virtual time.
	SuperviseOptions = supervise.Options
	// SuperviseStats counts the supervisor's work inside Stats: breaker
	// state, probes, trips, failovers, re-hosts.
	SuperviseStats = supervise.Stats
	// Observer is the observability hub (internal/obsv): a bounded JIT
	// lifecycle trace ring, a Prometheus-text metrics registry, and an
	// optional HTTP endpoint. Wire one in with WithObservability (builds
	// one) or WithObserver (shares an existing one); a nil Observer
	// disables observability at near-zero cost.
	Observer = obsv.Observer
	// ObservabilityOptions configures an Observer: the HTTP address, the
	// trace-ring capacity, and (for tests) a pinned wall clock.
	ObservabilityOptions = obsv.Options
	// TraceEvent is one recorded lifecycle event: what happened, to
	// which engine path, stamped with both wall and virtual time.
	TraceEvent = obsv.Event
	// TraceEventKind classifies a TraceEvent (compile-submit, cache-hit,
	// hot-swap, eviction, fault, recovery, …).
	TraceEventKind = obsv.EventKind
	// TransportStats counts one transport's protocol traffic:
	// round-trips, bytes each way, injected drops, and retries.
	TransportStats = transport.Stats
	// EngineHost is the serving side of the engine protocol — the core
	// of cmd/cascade-engined, embeddable for in-process loopback setups.
	EngineHost = transport.Host
	// EngineHostOptions configures an EngineHost (device, toolchain,
	// fault injector, JIT switch).
	EngineHostOptions = transport.HostOptions
	// Hypervisor virtualizes one shared Device and Toolchain across N
	// tenant Sessions (internal/hyper): fabric spatially partitioned into
	// per-tenant regions, tenants time-multiplexed when regions do not
	// all fit, compile workers split by fair share. Build one with Serve.
	Hypervisor = hyper.Hypervisor
	// Session is one hypervisor tenant: the Eval/RunTicks/Stats/Snapshot
	// surface of a Runtime over a private fabric partition, plus Close.
	// Neighbours cost it wall time only — its virtual clock and output
	// are byte-identical to running solo.
	Session = hyper.Session
	// SessionInfo is one live session's scheduling view (ID, phase,
	// region, compile share, quanta).
	SessionInfo = hyper.SessionInfo
	// ServeOption configures a Hypervisor (cascade.Serve).
	ServeOption = hyper.Option
	// SessionOption configures a Session (Hypervisor.NewSession).
	SessionOption = hyper.SessionOption
	// FarmOptions configures the sharded compile farm
	// (WithCompileFarm): worker count or remote links, per-shard queue
	// depth, cache replication factor, and deterministic outage
	// schedules for testing.
	FarmOptions = toolchain.FarmOptions
	// FarmStats counts the farm's routing work inside Stats: jobs
	// routed, steals, reroutes, sheds, peer cache hits, replication
	// placements, and control-message traffic.
	FarmStats = toolchain.FarmStats
	// ShardOutage is one deterministic shard-down window on the farm's
	// route-decision clock — the farm's seeded fault surface.
	ShardOutage = toolchain.ShardOutage
	// ShardLink is one farm worker endpoint: in-process by default,
	// or a cascade-engined -compile-worker daemon via DialCompileFarm.
	ShardLink = toolchain.ShardLink
)

// Typed failure sentinels, matchable with errors.Is through any number
// of wrapping layers.
var (
	// ErrEngineUnavailable reports that a remote engine's retry budget
	// was exhausted without a successful round-trip. With supervision
	// enabled (WithSupervision) the runtime fails over instead of
	// surfacing it; without, the run degrades permanently.
	ErrEngineUnavailable = transport.ErrEngineUnavailable
	// ErrDaemonRestarted reports that the engine daemon's boot epoch
	// changed mid-connection: the process serving this session died and
	// a different incarnation answered. Errors carrying it also match
	// ErrEngineUnavailable.
	ErrDaemonRestarted = transport.ErrDaemonRestarted
	// ErrOverloaded reports that the toolchain's admission control shed
	// a compile submission (ToolchainOptions.MaxQueue); callers back off
	// and resubmit rather than treating the design as uncompilable.
	ErrOverloaded = toolchain.ErrOverloaded
	// ErrShardUnavailable reports that a compile farm could not place a
	// flow on any shard — every worker down or unreachable. Like
	// ErrOverloaded it is a placement verdict, not a compile verdict:
	// the runtime resubmits after a virtual-time backoff and the flow
	// runs once a shard returns.
	ErrShardUnavailable = toolchain.ErrShardUnavailable
)

// NewEngineHost builds an engine-protocol host; serve it on a listener
// with its ServeListener method (see cmd/cascade-engined).
func NewEngineHost(opts EngineHostOptions) *EngineHost { return transport.NewHost(opts) }

// DialCompileFarm connects one ShardLink per address — each a
// cascade-engined daemon started with -compile-worker — for
// FarmOptions.Links / WithCompileFarm. On any dial failure the links
// already made are closed and the error names the failing worker.
func DialCompileFarm(addrs []string) ([]ShardLink, error) {
	return transport.DialFarm(addrs, transport.TCPOptions{})
}

// SeededShardOutages derives a deterministic outage schedule from a
// seed: n non-overlapping shard-down windows spread over the first
// `routes` route decisions, for FarmOptions.Outages. The same seed
// replays the same schedule, so farm-fault sessions reproduce byte for
// byte (ROADMAP invariant 15).
func SeededShardOutages(seed uint64, shards int, routes uint64, n int) []ShardOutage {
	return toolchain.SeededOutages(seed, shards, routes, n)
}

// NewObserver builds a standalone observability hub (see Observer). Most
// callers use WithObservability instead; build one directly to share it
// between a runtime and an embedded EngineHost, or to serve its HTTP
// endpoint (StartHTTP) without a runtime.
func NewObserver(oo ObservabilityOptions) *Observer { return obsv.New(oo) }

// EncodeSnapshot renders a snapshot as a self-contained text blob.
func EncodeSnapshot(s *Snapshot) string { return runtime.EncodeSnapshot(s) }

// DecodeSnapshot parses EncodeSnapshot's format.
func DecodeSnapshot(text string) (*Snapshot, error) { return runtime.DecodeSnapshot(text) }

// JIT phases (paper Figure 9).
const (
	PhaseEmpty     = runtime.PhaseEmpty
	PhaseSoftware  = runtime.PhaseSoftware
	PhaseInlined   = runtime.PhaseInlined
	PhaseHardware  = runtime.PhaseHardware
	PhaseForwarded = runtime.PhaseForwarded
	PhaseOpenLoop  = runtime.PhaseOpenLoop
	PhaseNative    = runtime.PhaseNative
)

// DefaultPrelude declares the standard IO environment (paper §3.2).
const DefaultPrelude = runtime.DefaultPrelude

// New creates a runtime configured by functional options, with
// paper-calibrated defaults for everything left unset: a Cyclone V-sized
// device, the default toolchain model, the default time model, and one
// scheduler lane per CPU.
func New(opts ...Option) *Runtime { return runtime.New(buildOptions(opts)) }

// NewWithOptions creates a runtime from an Options struct literal.
//
// Deprecated: it is exactly New(WithOptions(o)) — there is one
// options-resolution path, and the functional form composes with the
// other options. New code should call New directly.
func NewWithOptions(o Options) *Runtime { return New(WithOptions(o)) }

// Serve boots a hypervisor: one shared device and toolchain,
// virtualized across the tenant sessions opened with hv.NewSession.
// Defaults: a fresh Cyclone V, the default toolchain model, 64-tick
// scheduling quanta, quarter-fabric session quotas.
//
//	hv, _ := cascade.Serve()
//	s, _ := hv.NewSession(cascade.SessionQuota(20_000))
//	s.MustEval(cascade.DefaultPrelude)
//	s.MustEval(`reg [7:0] cnt = 0; always @(posedge clk.val) cnt <= cnt + 1; assign led.val = cnt;`)
//	s.RunTicks(1000)
//	defer s.Close()
func Serve(opts ...ServeOption) (*Hypervisor, error) { return hyper.New(opts...) }

// Hypervisor options (cascade.Serve).
var (
	// ServeDevice serves the given shared fabric instead of a fresh
	// Cyclone V.
	ServeDevice = hyper.WithDevice
	// ServeToolchain shares an existing compile service (and its
	// bitstream cache) instead of building one over the device.
	ServeToolchain = hyper.WithToolchain
	// ServeToolchainOptions tunes the toolchain the hypervisor builds
	// when none is supplied.
	ServeToolchainOptions = hyper.WithToolchainOptions
	// ServeQuantum sets the time-multiplexing quantum in virtual clock
	// ticks (default 64).
	ServeQuantum = hyper.WithQuantum
	// ServeDefaultQuota sets the region size sessions get when they do
	// not specify one (default: a quarter of the fabric).
	ServeDefaultQuota = hyper.WithDefaultQuota
	// ServeDefaultCompileShare sets the default per-session bound on
	// concurrent compile workers (default 0: global pool only).
	ServeDefaultCompileShare = hyper.WithDefaultCompileShare
	// ServeObserver wires hypervisor-level metrics (active sessions,
	// per-tenant residency and quanta) into an observability hub.
	ServeObserver = hyper.WithObserver
)

// Session options (Hypervisor.NewSession).
var (
	// SessionID names the session's tenant ID (default "s1", "s2", ...).
	SessionID = hyper.WithID
	// SessionQuota sets the session's fabric region size in logic
	// elements (default: the hypervisor's default quota).
	SessionQuota = hyper.WithQuota
	// SessionCompileShare bounds the session's concurrent compile
	// workers (its fair share of the shared pool).
	SessionCompileShare = hyper.WithCompileShare
	// SessionView directs the session's program output to a View.
	SessionView = hyper.WithView
)

// SessionRuntime seeds the session runtime's configuration from the
// same functional options New accepts (view, features, observer,
// injector, parallelism, ...). Device, Toolchain, and Tenant are owned
// by the hypervisor and overwritten.
func SessionRuntime(opts ...Option) SessionOption {
	return hyper.WithRuntime(buildOptions(opts))
}

// Open creates a runtime with crash-safe persistence (configure it with
// WithPersistence / WithPersistenceOptions) and recovers whatever state
// a previous process left in the persistence directory: the newest
// checkpoint that verifies clean, rolled forward by replaying the
// write-ahead journal. When info.Recovered is true the runtime is
// already mid-execution — skip the usual prelude/program evals and
// continue ticking.
func Open(opts ...Option) (*Runtime, *RecoveryInfo, error) {
	return runtime.Open(buildOptions(opts))
}

// NewWorld creates an empty virtual peripheral board.
func NewWorld() *World { return stdlib.NewWorld() }

// NewCycloneV returns the paper's device: 110K LEs at 50 MHz.
func NewCycloneV() *Device { return fpga.NewCycloneV() }

// NewDevice returns a device with the given capacity and clock.
func NewDevice(capacityLEs int, clockHz uint64) *Device {
	return fpga.NewDevice(capacityLEs, clockHz)
}

// NewToolchain returns a vendor-flow model bound to dev.
func NewToolchain(dev *Device, opts ToolchainOptions) *Toolchain {
	return toolchain.New(dev, opts)
}

// DefaultToolchainOptions returns the paper-calibrated latency model.
func DefaultToolchainOptions() ToolchainOptions { return toolchain.DefaultOptions() }

// NewFaultInjector builds a deterministic fault injector: the same
// config replays the same fault schedule, so failing sessions reproduce
// byte for byte.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// IsFaultTransient reports whether err is an injected fault the system
// may recover from by retrying (transient compile failures, bus errors,
// region faults); permanent faults report false.
func IsFaultTransient(err error) bool { return fault.IsTransient(err) }

// NewREPL builds an interactive session over a fresh runtime configured
// by opts; program output and status go to out.
func NewREPL(out io.Writer, opts ...Option) (*REPL, error) {
	return repl.New(buildOptions(opts), out)
}

// NewSessionREPL builds an interactive session as a tenant of hv: evals
// and clock ticks route through the hypervisor's residency scheduler,
// and the REPL's :sessions and :stats commands show the multi-tenant
// view. Program output and status go to out. Closing the REPL closes
// its session; the hypervisor and any other tenants keep running.
func NewSessionREPL(hv *Hypervisor, out io.Writer, opts ...SessionOption) (*REPL, error) {
	return repl.NewSession(hv, out, opts...)
}
