// Quickstart: the paper's running example (§2.1) end to end.
//
// Eight LEDs animate one at a time while four buttons can pause the
// show. The program is eval'd into a running Cascade runtime: it starts
// executing in a software simulator in well under a (virtual) second,
// the JIT compiles a hardware engine in the background, and execution
// migrates onto the simulated FPGA without disturbing the animation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"cascade"
	"cascade/internal/workloads/ledswitch"
)

func ledBar(v uint64) string {
	var sb strings.Builder
	for i := 7; i >= 0; i-- {
		if v>>uint(i)&1 == 1 {
			sb.WriteString("●")
		} else {
			sb.WriteString("○")
		}
	}
	return sb.String()
}

func main() {
	// Speed the virtual vendor toolchain up 600x so the demo's JIT
	// transition happens within the first screenful.
	dev := cascade.NewCycloneV()
	tco := cascade.DefaultToolchainOptions()
	tco.Scale = 600
	rt := cascade.New(
		cascade.WithDevice(dev),
		cascade.WithToolchain(cascade.NewToolchain(dev, tco)),
		cascade.WithOpenLoopTarget(50_000_000), // 50 virtual µs per burst
		// Trace the JIT lifecycle and serve /metrics, /trace, and
		// /debug/pprof on an ephemeral port for the demo's duration.
		cascade.WithObservability(cascade.ObservabilityOptions{Addr: "127.0.0.1:0"}),
	)

	fmt.Println("eval: standard prelude (Clock clk; Pad#(4) pad; Led#(8) led)")
	if err := rt.Eval(cascade.DefaultPrelude); err != nil {
		panic(err)
	}
	fmt.Println("eval: the running example (Rol + counter)")
	if err := rt.Eval(ledswitch.Figure3); err != nil {
		panic(err)
	}
	fmt.Printf("code is running %.3f virtual seconds after eval\n\n", float64(rt.StartupPs())/1e12)

	lastPhase := cascade.PhaseEmpty
	for i := 0; i < 40; i++ {
		rt.RunTicks(1)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("--- engine state: %v ---\n", p)
			lastPhase = p
		}
		if i%2 == 0 {
			fmt.Printf("t=%7.3fs  led=%s\n", float64(rt.VirtualNow())/1e12, ledBar(rt.World().Led("main.led")))
		}
		if i == 24 {
			fmt.Println(">>> pressing button 0 (animation pauses)")
			rt.World().PressPad("main.pad", 1)
		}
		if i == 32 {
			fmt.Println(">>> releasing button 0")
			rt.World().PressPad("main.pad", 0)
		}
	}

	// Let the background compilation finish (idle time also counts) and
	// watch execution migrate into hardware.
	if readyAt, pending := rt.CompileReadyAt(); pending && rt.VirtualNow() < readyAt {
		fmt.Printf("\nwaiting out the background compile (finishes at %.2f virtual s)...\n",
			float64(readyAt)/1e12)
		rt.Idle(readyAt - rt.VirtualNow() + 1)
	}
	for i := 0; i < 16; i++ {
		rt.RunTicks(1)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("--- engine state: %v ---\n", p)
			lastPhase = p
		}
		if i%2 == 0 {
			fmt.Printf("t=%7.3fs  led=%s\n", float64(rt.VirtualNow())/1e12, ledBar(rt.World().Led("main.led")))
		}
	}
	fmt.Printf("\nfinal phase: %v, hardware area: %d LEs\n", rt.Phase(), rt.AreaLEs())

	// The observer recorded the whole migration; replay the story.
	obs := rt.Observer()
	fmt.Printf("\nJIT lifecycle trace (last 8 of %d events; full trace at http://%s/trace):\n",
		len(obs.Trace(0)), obs.HTTPAddr())
	for _, ev := range obs.Trace(8) {
		fmt.Println(ev.String())
	}
	fmt.Printf("\ncompiles: %d (%.2f virtual s billed)  promotions: %d  metrics: http://%s/metrics\n",
		obs.CompileLatency.Count(), float64(obs.CompileLatency.Sum())/1e12,
		obs.Promotions.Value(), obs.HTTPAddr())
}
