// NW: the paper's §6.4 class assignment as an application — global
// alignment of two DNA fragments with Needleman-Wunsch, computed one
// dynamic-programming cell per clock cycle in generated Verilog, checked
// against a plain Go implementation, with the score reported by $display
// from whatever engine the design happens to be running in.
//
//	go run ./examples/nw
package main

import (
	"fmt"

	"cascade/internal/fpga"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
	"cascade/internal/workloads/nw"
)

func main() {
	cfg := nw.Config{
		SeqA:     []byte("GATTACAGATTACA"),
		SeqB:     []byte("GCATGCUGCATGCU"),
		Match:    2,
		Mismatch: -1,
		Gap:      -2,
		Display:  true,
	}
	fmt.Printf("aligning %s against %s (match=%+d mismatch=%+d gap=%+d)\n",
		cfg.SeqA, cfg.SeqB, cfg.Match, cfg.Mismatch, cfg.Gap)
	fmt.Printf("reference (Go) score: %d\n", cfg.Score())

	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 5000
	rt := runtime.New(runtime.Options{
		Device:           dev,
		Toolchain:        toolchain.New(dev, tco),
		OpenLoopTargetPs: 20 * vclock.Us,
		View:             stdoutView{},
	})
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		panic(err)
	}
	if err := rt.Eval(nw.GenerateProgram(cfg)); err != nil {
		panic(err)
	}

	lastPhase := runtime.PhaseEmpty
	budget := uint64(cfg.Cycles()) + 64
	for rt.Ticks() < budget {
		rt.RunTicks(8)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("[tick %5d] engine: %v\n", rt.Ticks(), p)
			lastPhase = p
		}
	}
	score := int(int16(rt.World().Led("main.led")) << 8 >> 8) // low byte only
	_ = score
	fmt.Printf("done after %d ticks (%d DP cells) in phase %v\n",
		rt.Ticks(), len(cfg.SeqA)*len(cfg.SeqB), rt.Phase())
}

// stdoutView prints program output directly.
type stdoutView struct{}

func (stdoutView) Display(text string)        { fmt.Print(text) }
func (stdoutView) Info(f string, args ...any) { fmt.Printf("[cascade] "+f+"\n", args...) }
func (stdoutView) Error(err error)            { fmt.Println("[cascade] error:", err) }
