// Regexstream: the paper's §6.2 benchmark as an application — an HTTP
// request log streamed byte-by-byte through the standard-library FIFO
// into a synthesized regex matcher, counting GET requests for .html
// resources. The host pushes bytes while the matcher migrates from
// software simulation onto the simulated FPGA underneath it.
//
//	go run ./examples/regexstream
package main

import (
	"fmt"
	"strings"

	"cascade/internal/fpga"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
	"cascade/internal/workloads/regexgen"
)

const pattern = `GET /[a-z]*\.html`

var requestLog = strings.Repeat(
	"GET /index.html HTTP/1.1\n"+
		"POST /login HTTP/1.1\n"+
		"GET /about.html HTTP/1.1\n"+
		"GET /logo.png HTTP/1.1\n"+
		"GET /contact.html HTTP/1.1\n", 40)

func main() {
	prog, dfa, err := regexgen.GenerateStreaming(pattern)
	if err != nil {
		panic(err)
	}
	want := dfa.Run([]byte(requestLog))
	fmt.Printf("pattern %q -> %d DFA states; reference counts %d matches in %d bytes\n",
		pattern, dfa.States(), want, len(requestLog))

	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 600
	rt := runtime.New(runtime.Options{
		Device:           dev,
		Toolchain:        toolchain.New(dev, tco),
		OpenLoopTargetPs: 100 * vclock.Us,
	})
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		panic(err)
	}
	if err := rt.Eval(prog); err != nil {
		panic(err)
	}

	stream := rt.World().Stream("main.fifo")
	stream.PushBytes([]byte(requestLog))

	lastPhase := runtime.PhaseEmpty
	for stream.PendingIn() > 0 || rt.Ticks() < uint64(len(requestLog))+64 {
		rt.RunTicks(500)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("[%8.3f vs] engine: %v (consumed so far: %d bytes)\n",
				float64(rt.VirtualNow())/1e12, p, stream.Consumed)
			lastPhase = p
		}
		if rt.Ticks() > 10_000_000 {
			break
		}
	}
	// Drain the matcher's counters through the runtime's world: the
	// matches wire drives nothing visible, so read it via one last eval
	// that mirrors it onto the LEDs.
	if err := rt.Eval(`assign led.val = matches[7:0];`); err != nil {
		panic(err)
	}
	rt.RunTicks(4)
	got := rt.World().Led("main.led")
	fmt.Printf("hardware counted %d matches (low 8 bits; reference %d -> %d)\n",
		got, want, want&0xff)
	if got == uint64(want&0xff) {
		fmt.Println("MATCH: hardware agrees with the reference DFA")
	} else {
		fmt.Println("MISMATCH")
	}
}
