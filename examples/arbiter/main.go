// Arbiter: a priority arbiter built from the casez wildcard idiom,
// wired to the GPIO standard-library component — request lines driven by
// the host, the granted line visible back on the host side — running
// through the full JIT lifecycle.
//
//	go run ./examples/arbiter
package main

import (
	"fmt"

	"cascade/internal/fpga"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
)

const arbiter = `
module Arbiter(
  input wire clk,
  input wire [7:0] req,
  output reg [7:0] grant
);
  // One-hot grant to the highest-priority requester, latched per cycle.
  always @(posedge clk)
    casez (req)
      8'b1???????: grant <= 8'b10000000;
      8'b01??????: grant <= 8'b01000000;
      8'b001?????: grant <= 8'b00100000;
      8'b0001????: grant <= 8'b00010000;
      8'b00001???: grant <= 8'b00001000;
      8'b000001??: grant <= 8'b00000100;
      8'b0000001?: grant <= 8'b00000010;
      8'b00000001: grant <= 8'b00000001;
      default:     grant <= 8'b00000000;
    endcase
endmodule

GPIO#(8) bus();
wire [7:0] g;
Arbiter arb(.clk(clk.val), .req(bus.in), .grant(g));
assign bus.out = g;
assign led.val = g;
`

func main() {
	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 2000
	rt := runtime.New(runtime.Options{
		Device:           dev,
		Toolchain:        toolchain.New(dev, tco),
		OpenLoopTargetPs: 50 * vclock.Us,
	})
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		panic(err)
	}
	if err := rt.Eval(arbiter); err != nil {
		panic(err)
	}

	requests := []uint64{0b0000_0100, 0b1010_0000, 0b0000_0011, 0, 0b0001_1111}
	lastPhase := runtime.PhaseEmpty
	for _, req := range requests {
		rt.World().DriveGPIO("main.bus", req)
		rt.RunTicks(4)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("--- engine: %v ---\n", p)
			lastPhase = p
		}
		fmt.Printf("req=%08b -> grant=%08b\n", req, rt.World().GPIO("main.bus"))
	}

	// Let the JIT land in hardware and check the arbiter still answers.
	if readyAt, pending := rt.CompileReadyAt(); pending && rt.VirtualNow() < readyAt {
		rt.Idle(readyAt - rt.VirtualNow() + 1)
	}
	rt.RunTicks(50)
	fmt.Printf("--- engine: %v ---\n", rt.Phase())
	rt.World().DriveGPIO("main.bus", 0b0010_0001)
	rt.RunTicks(4)
	fmt.Printf("req=%08b -> grant=%08b (from %v)\n", uint64(0b0010_0001), rt.World().GPIO("main.bus"), rt.Phase())
}
