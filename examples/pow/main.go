// PoW: the paper's §6.1 benchmark as an application — a SHA-256
// proof-of-work miner that searches for a nonce whose hash clears a
// target, printing every solution with $display even after the design
// has migrated to hardware, and terminating with $finish.
//
//	go run ./examples/pow
package main

import (
	"fmt"

	"cascade/internal/fpga"
	"cascade/internal/runtime"
	"cascade/internal/toolchain"
	"cascade/internal/vclock"
	"cascade/internal/workloads/pow"
)

func main() {
	cfg := pow.DefaultConfig()
	cfg.Target = 0x08000000 // ~1 in 32 hashes solves
	cfg.Display = true
	cfg.FinishOnFind = true

	// The reference implementation predicts the solution the hardware
	// must find.
	wantNonce, ok := cfg.FindNonce(10_000)
	if !ok {
		panic("reference search found nothing")
	}
	fmt.Printf("reference (crypto/sha256) predicts nonce %d\n", wantNonce)

	dev := fpga.NewCycloneV()
	tco := toolchain.DefaultOptions()
	tco.Scale = 2000 // demo-friendly compile latency
	rt := runtime.New(runtime.Options{
		Device:           dev,
		Toolchain:        toolchain.New(dev, tco),
		OpenLoopTargetPs: 100 * vclock.Us,
		View:             stdoutView{},
	})
	if err := rt.Eval(runtime.DefaultPrelude); err != nil {
		panic(err)
	}
	prog := pow.Generate(cfg) + `
wire [31:0] hashes, nonce, hash0, sol;
wire found;
Pow miner(.clk(clk.val), .hashes(hashes), .nonce(nonce),
          .found(found), .hash0(hash0), .solution(sol));
`
	if err := rt.Eval(prog); err != nil {
		panic(err)
	}

	lastPhase := runtime.PhaseEmpty
	for !rt.Finished() && rt.Ticks() < 10_000_000 {
		rt.RunTicks(200)
		if p := rt.Phase(); p != lastPhase {
			fmt.Printf("[%8.2f vs] engine: %v\n", float64(rt.VirtualNow())/1e12, p)
			lastPhase = p
		}
	}
	if !rt.Finished() {
		fmt.Println("no solution within the tick budget")
		return
	}
	fmt.Printf("finished after %d ticks (%.0f hashes) at %.2f virtual seconds in phase %v\n",
		rt.Ticks(), float64(rt.Ticks())/float64(pow.CyclesPerHash), float64(rt.VirtualNow())/1e12, rt.Phase())
}

// stdoutView prints program output directly.
type stdoutView struct{}

func (stdoutView) Display(text string)        { fmt.Print(text) }
func (stdoutView) Info(f string, args ...any) { fmt.Printf("[cascade] "+f+"\n", args...) }
func (stdoutView) Error(err error)            { fmt.Println("[cascade] error:", err) }
